// mecar command-line front-end.
//
// Subcommands:
//   offline     run the offline algorithms on a generated instance
//   online      run the online policies over a slotted horizon
//   resilience  run the online policies under an injected fault scenario
//               (scripted --plan=FILE or seeded --chaos=INTENSITY) and
//               print the resilience metrics per policy
//   experiment  run a declarative scenario file through the scenario
//               engine (see scenarios/*.scenario) and print its tables;
//               --metrics-out/--trace-out export telemetry;
//               --checkpoint-dir/--checkpoint-every/--resume run the
//               serial checkpointed path (kill-anywhere, resume
//               bit-identical); --crash-at/--crash-after-units inject a
//               SIGKILL for the crash/restore harness
//   metrics     list every registered telemetry metric (the inventory)
//   list        print the policy registry and the scenario-file keys
//   topology    generate a topology and print its stations/links as CSV
//   trace       synthesize a frame-level AR session trace as CSV
//   lp          dump the slot-indexed LP of an instance in MPS format
//
// Common flags: --seed=N --requests=N --stations=N. Subcommand-specific
// flags are listed by `mecar_cli <subcommand> --help`.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <vector>

#include "baselines/greedy.h"
#include "exp/registry.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/telemetry.h"
#include "obs/catalog.h"
#include "obs/telemetry.h"
#include "baselines/heu_kkt.h"
#include "baselines/ocorp.h"
#include "core/appro.h"
#include "core/heu.h"
#include "core/slot_lp.h"
#include "lp/mps.h"
#include "lp/revised_simplex.h"
#include "mec/topology.h"
#include "mec/trace.h"
#include "mec/workload.h"
#include "sim/checkpoint.h"
#include "sim/dynamic_rr.h"
#include "sim/fault_plan.h"
#include "sim/metrics.h"
#include "sim/online_baselines.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/snapshot.h"
#include "util/table.h"

namespace {

using namespace mecar;

struct Common {
  std::uint64_t seed;
  int requests;
  int stations;
};

Common common_flags(const util::Cli& cli) {
  return Common{
      static_cast<std::uint64_t>(cli.get_int_or("seed", 42)),
      static_cast<int>(cli.get_int_or("requests", 150)),
      static_cast<int>(cli.get_int_or("stations", 20)),
  };
}

mec::Topology make_topology(const Common& common, util::Rng& rng) {
  mec::TopologyParams params;
  params.num_stations = common.stations;
  return mec::generate_topology(params, rng);
}

int cmd_offline(const util::Cli& cli) {
  const Common common = common_flags(cli);
  util::Rng rng(common.seed);
  const mec::Topology topo = make_topology(common, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = common.requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);
  const core::AlgorithmParams params;

  util::Table table({"algorithm", "reward ($)", "rewarded", "admitted",
                     "avg latency (ms)"});
  auto report = [&](const std::string& name,
                    const core::OffloadResult& result) {
    table.add_row({name, util::format_double(result.total_reward(), 1),
                   std::to_string(result.num_rewarded()),
                   std::to_string(result.num_admitted()),
                   util::format_double(result.average_latency_ms(), 1)});
  };
  {
    util::Rng r(common.seed + 1);
    report("Appro", core::run_appro(topo, requests, realized, params, r));
  }
  {
    util::Rng r(common.seed + 1);
    report("Heu", core::run_heu(topo, requests, realized, params, r));
  }
  report("Greedy", baselines::run_greedy(topo, requests, realized, params));
  report("OCORP", baselines::run_ocorp(topo, requests, realized, params));
  report("HeuKKT", baselines::run_heu_kkt(topo, requests, realized, params));
  table.print(std::cout, "offline instance, seed " +
                             std::to_string(common.seed));
  return 0;
}

int cmd_online(const util::Cli& cli) {
  const Common common = common_flags(cli);
  const int horizon = static_cast<int>(cli.get_int_or("horizon", 600));
  util::Rng rng(common.seed);
  const mec::Topology topo = make_topology(common, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = common.requests;
  wparams.horizon_slots = horizon;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);
  sim::OnlineParams params;
  params.horizon_slots = horizon;
  params.collect_detail = true;

  util::Table table({"policy", "reward ($)", "completed", "dropped",
                     "p95 lat (ms)", "fairness", "mean util"});
  auto run = [&](sim::OnlinePolicy& policy) {
    sim::OnlineSimulator simulator(topo, requests, realized, params);
    const auto m = simulator.run(policy);
    const auto s = sim::summarize(m);
    table.add_row({policy.name(), util::format_double(m.total_reward, 1),
                   std::to_string(m.completed), std::to_string(m.dropped),
                   util::format_double(s.latency_p95_ms, 1),
                   util::format_double(s.service_fairness, 3),
                   util::format_double(s.mean_utilization, 3)});
  };
  {
    sim::DynamicRrPolicy policy(topo, core::AlgorithmParams{},
                                sim::DynamicRrParams{},
                                util::Rng(common.seed + 1));
    run(policy);
  }
  {
    sim::GreedyOnlinePolicy policy(topo, core::AlgorithmParams{});
    run(policy);
  }
  {
    sim::OcorpOnlinePolicy policy(topo, core::AlgorithmParams{});
    run(policy);
  }
  {
    sim::HeuKktOnlinePolicy policy(topo, core::AlgorithmParams{});
    run(policy);
  }
  table.print(std::cout, "online horizon " + std::to_string(horizon) +
                             " slots, seed " + std::to_string(common.seed));
  return 0;
}

int cmd_resilience(const util::Cli& cli) {
  const Common common = common_flags(cli);
  const int horizon = static_cast<int>(cli.get_int_or("horizon", 600));
  util::Rng rng(common.seed);
  const mec::Topology topo = make_topology(common, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = common.requests;
  wparams.horizon_slots = horizon;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);

  // Fault scenario: a versioned script (--plan=FILE) or a seeded chaos
  // draw (--chaos=INTENSITY). --emit-plan prints the active plan in the
  // scenario format so a chaos draw can be saved and replayed.
  sim::FaultPlan plan;
  if (const auto path = cli.get("plan"); path && !path->empty()) {
    std::ifstream file(*path);
    if (!file) {
      std::cerr << "mecar_cli: cannot open fault plan '" << *path << "'\n";
      return 1;
    }
    plan = sim::read_fault_plan(file);
  } else {
    sim::ChaosParams chaos;
    chaos.intensity = cli.get_double_or("chaos", 0.5);
    util::Rng chaos_rng(static_cast<unsigned>(common.seed) * 2654435761u +
                        17u);
    plan = sim::generate_chaos(topo, chaos, horizon, chaos_rng);
  }
  plan.validate(topo);
  if (cli.has("emit-plan")) {
    sim::write_fault_plan(plan, std::cout);
    std::cout << '\n';
  }

  sim::OnlineParams params;
  params.horizon_slots = horizon;
  util::Table table({"policy", "reward ($)", "retention", "displaced",
                     "recovered", "mean rec (slots)", "drop starve",
                     "drop fault", "drop cut"});
  auto run = [&](sim::OnlinePolicy& healthy, sim::OnlinePolicy& policy) {
    sim::OnlineSimulator ref_sim(topo, requests, realized, params);
    const auto ref = ref_sim.run(healthy);
    sim::OnlineParams faulted = params;
    faulted.faults = plan;
    sim::OnlineSimulator simulator(topo, requests, realized, faulted);
    const auto m = simulator.run(policy);
    const auto& rs = m.resilience;
    table.add_row(
        {policy.name(), util::format_double(m.total_reward, 1),
         util::format_double(ref.total_reward > 0.0
                                 ? m.total_reward / ref.total_reward
                                 : 1.0,
                             3),
         std::to_string(m.displaced), std::to_string(rs.recovered),
         util::format_double(rs.mean_recovery_slots, 2),
         std::to_string(rs.dropped_starvation),
         std::to_string(rs.dropped_fault),
         std::to_string(rs.dropped_partition)});
  };
  {
    sim::DynamicRrPolicy healthy(topo, core::AlgorithmParams{},
                                 sim::DynamicRrParams{},
                                 util::Rng(common.seed + 1));
    sim::DynamicRrPolicy policy(topo, core::AlgorithmParams{},
                                sim::DynamicRrParams{},
                                util::Rng(common.seed + 1));
    run(healthy, policy);
  }
  {
    sim::GreedyOnlinePolicy healthy(topo, core::AlgorithmParams{});
    sim::GreedyOnlinePolicy policy(topo, core::AlgorithmParams{});
    run(healthy, policy);
  }
  {
    sim::OcorpOnlinePolicy healthy(topo, core::AlgorithmParams{});
    sim::OcorpOnlinePolicy policy(topo, core::AlgorithmParams{});
    run(healthy, policy);
  }
  {
    sim::HeuKktOnlinePolicy healthy(topo, core::AlgorithmParams{});
    sim::HeuKktOnlinePolicy policy(topo, core::AlgorithmParams{});
    run(healthy, policy);
  }
  table.print(std::cout, "resilience, " + std::to_string(plan.num_events()) +
                             " fault events, horizon " +
                             std::to_string(horizon) + " slots, seed " +
                             std::to_string(common.seed));
  return 0;
}

int cmd_topology(const util::Cli& cli) {
  const Common common = common_flags(cli);
  util::Rng rng(common.seed);
  const mec::Topology topo = make_topology(common, rng);
  std::cout << "station_id,capacity_mhz,proc_ms_per_unit,x,y\n";
  for (const mec::BaseStation& bs : topo.stations()) {
    std::cout << bs.id << ',' << bs.capacity_mhz << ','
              << bs.proc_ms_per_unit << ',' << bs.x << ',' << bs.y << '\n';
  }
  std::cout << "\nlink_a,link_b,delay_ms,bandwidth_mbps\n";
  for (const mec::Link& link : topo.links()) {
    std::cout << link.a << ',' << link.b << ',' << link.delay_ms << ','
              << link.bandwidth_mbps << '\n';
  }
  return 0;
}

int cmd_trace(const util::Cli& cli) {
  const Common common = common_flags(cli);
  util::Rng rng(common.seed);
  mec::TraceParams params;
  params.duration_s = cli.get_double_or("duration", 10.0);
  params.frame_kb_mean = cli.get_double_or("frame-kb", 64.0);
  const auto trace = mec::synthesize_trace(params, rng);
  trace.write_csv(std::cout);
  std::cerr << "# " << trace.size() << " frames, "
            << util::format_double(trace.average_rate_mbps(), 2)
            << " MB/s average\n";
  return 0;
}

int cmd_lp(const util::Cli& cli) {
  const Common common = common_flags(cli);
  util::Rng rng(common.seed);
  const mec::Topology topo = make_topology(common, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = common.requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto inst =
      core::build_slot_lp(topo, requests, core::AlgorithmParams{});
  lp::write_mps(inst.model, std::cout, "mecar_slot_lp");
  std::cerr << "# " << inst.model.num_variables() << " columns, "
            << inst.model.num_constraints() << " rows\n";
  return 0;
}

// ---- fuzz-lp: differential fuzzer for the LP engines ---------------------

/// One randomized slot-sized LP. Families by seed % 4: 0 — random bounded
/// LP; 1 — degenerate (duplicate + zero-rhs rows); 2 — near-singular
/// (nearly dependent rows); 3 — a real slot LP from a random instance.
/// Every family is feasible (x = 0) and bounded (a global sum cap), so
/// both engines must agree on kOptimal and its objective.
lp::Model fuzz_model(std::uint64_t seed) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ull + 1234567ull);
  const int family = static_cast<int>(seed % 4);
  if (family == 3) {
    mec::TopologyParams tparams;
    tparams.num_stations = 3 + static_cast<int>(rng.uniform_int(0, 4));
    const mec::Topology topo = mec::generate_topology(tparams, rng);
    mec::WorkloadParams wparams;
    wparams.num_requests = 4 + static_cast<int>(rng.uniform_int(0, 12));
    const auto requests = mec::generate_requests(wparams, topo, rng);
    return core::build_slot_lp(topo, requests, core::AlgorithmParams{}).model;
  }

  lp::Model model;
  const int n = 3 + static_cast<int>(rng.uniform_int(0, 9));
  const int m = 2 + static_cast<int>(rng.uniform_int(0, 6));
  for (int j = 0; j < n; ++j) {
    const double upper =
        rng.bernoulli(0.4) ? rng.uniform(0.5, 10.0) : lp::kInf;
    model.add_variable("x" + std::to_string(j), rng.uniform(-1.0, 5.0),
                       upper);
  }
  std::vector<std::vector<lp::Term>> rows;
  for (int r = 0; r < m; ++r) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.6)) terms.push_back({j, rng.uniform(0.1, 4.0)});
    }
    if (terms.empty()) {
      terms.push_back(
          {static_cast<int>(rng.uniform_int(0, n - 1)), 1.0});
    }
    rows.push_back(std::move(terms));
  }
  if (family == 1) {
    // Degenerate: a duplicate constraint plus a zero-rhs row pinning its
    // variables at 0 — ties everywhere, Bland territory.
    rows.push_back(rows.front());
    rows.push_back({{static_cast<int>(rng.uniform_int(0, n - 1)), 1.0}});
  } else if (family == 2) {
    // Near-singular: an almost linearly dependent copy of the first row,
    // the classic factorization stressor.
    std::vector<lp::Term> dep = rows.front();
    for (lp::Term& t : dep) {
      t.coeff = 2.0 * t.coeff + rng.uniform(-1e-9, 1e-9);
    }
    rows.push_back(std::move(dep));
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    double rhs = rng.uniform(1.0, 20.0);
    if (family == 1 && r + 1 == rows.size()) rhs = 0.0;
    std::vector<lp::Term> terms = rows[r];
    // Structured mutation: blow a row up by 1e5 (same polytope, ugly
    // conditioning) every fourth instance or so.
    if (rng.bernoulli(0.25)) {
      for (lp::Term& t : terms) t.coeff *= 1e5;
      rhs *= 1e5;
    }
    model.add_constraint("r" + std::to_string(r), lp::Sense::kLe, rhs,
                         terms);
  }
  // Global cap: keeps unbounded rays out even for columns no row touches.
  std::vector<lp::Term> cap;
  for (int j = 0; j < n; ++j) cap.push_back({j, 1.0});
  model.add_constraint("cap", lp::Sense::kLe, rng.uniform(10.0, 50.0), cap);
  return model;
}

/// Differential + recovery-invariant checks for one seed. Returns false
/// and fills `why` on the first violated invariant.
bool fuzz_one(std::uint64_t seed, std::string& why) {
  const lp::Model model = fuzz_model(seed);
  const lp::SolveResult dense = lp::SimplexSolver().solve(model);
  const lp::SolveResult sparse = lp::RevisedSimplexSolver().solve(model);

  const auto close = [&](double a, double b) {
    return std::abs(a - b) <= 1e-8 * (1.0 + std::abs(a));
  };
  if (dense.status != sparse.status) {
    why = std::string("status mismatch: dense=") +
          lp::to_string(dense.status) +
          " sparse=" + lp::to_string(sparse.status);
    return false;
  }
  if (dense.optimal()) {
    if (!close(dense.objective, sparse.objective)) {
      why = "objective mismatch: dense=" + std::to_string(dense.objective) +
            " sparse=" + std::to_string(sparse.objective);
      return false;
    }
    if (model.max_violation(sparse.x) > 1e-7) {
      why = "sparse solution violates constraints by " +
            std::to_string(model.max_violation(sparse.x));
      return false;
    }
  }

  // Recovery invariant 1 — transient fault: one poisoned FTRAN must be
  // absorbed by the in-place recovery and change nothing.
  {
    lp::RevisedSimplexOptions opt;
    opt.inject_nan_at_pivot = 1;
    const lp::SolveResult res = lp::RevisedSimplexSolver(opt).solve(model);
    if (res.status != dense.status ||
        (dense.optimal() && !close(dense.objective, res.objective))) {
      why = std::string("transient-NaN run diverged: status=") +
            lp::to_string(res.status) +
            " objective=" + std::to_string(res.objective);
      return false;
    }
  }
  // Recovery invariant 2 — persistent fault: every FTRAN poisoned; the
  // ladder must escalate to the dense cross-solve and still answer.
  {
    lp::RevisedSimplexOptions opt;
    opt.inject_nan_every_pivot = true;
    const lp::SolveResult res = lp::RevisedSimplexSolver(opt).solve(model);
    if (res.status != dense.status ||
        (dense.optimal() && !close(dense.objective, res.objective))) {
      why = std::string("persistent-NaN run diverged: status=") +
            lp::to_string(res.status) +
            " objective=" + std::to_string(res.objective);
      return false;
    }
  }
  // Recovery invariant 3 — anytime budget: a tiny pivot budget yields
  // kOptimal or a feasible best-so-far iterate under the optimum.
  {
    lp::RevisedSimplexOptions opt;
    opt.budget.max_pivots = 3;
    const lp::SolveResult res = lp::RevisedSimplexSolver(opt).solve(model);
    if (res.status != lp::SolveStatus::kOptimal &&
        res.status != lp::SolveStatus::kDeadline) {
      why = std::string("budgeted run status: ") + lp::to_string(res.status);
      return false;
    }
    if (!res.x.empty()) {
      if (model.max_violation(res.x) > 1e-7) {
        why = "budgeted iterate violates constraints by " +
              std::to_string(model.max_violation(res.x));
        return false;
      }
      if (dense.optimal() &&
          res.objective >
              dense.objective + 1e-8 * (1.0 + std::abs(dense.objective))) {
        why = "budgeted iterate beats the optimum: " +
              std::to_string(res.objective) + " > " +
              std::to_string(dense.objective);
        return false;
      }
    }
  }
  return true;
}

int cmd_fuzz_lp(const util::Cli& cli) {
  if (cli.has("seed")) {
    const auto seed =
        static_cast<std::uint64_t>(cli.get_int_or("seed", 0));
    std::string why;
    if (fuzz_one(seed, why)) {
      std::cout << "fuzz-lp: seed " << seed << " ok\n";
      return 0;
    }
    std::cerr << "FAIL seed " << seed << ": " << why << '\n';
    return 1;
  }
  const int seeds = static_cast<int>(cli.get_int_or("seeds", 200));
  int failures = 0;
  for (int s = 0; s < seeds; ++s) {
    std::string why;
    if (fuzz_one(static_cast<std::uint64_t>(s), why)) continue;
    std::cerr << "FAIL seed " << s << ": " << why
              << "\n  replay: mecar_cli fuzz-lp --seed=" << s << '\n';
    ++failures;
  }
  std::cout << "fuzz-lp: " << seeds << " seeds, " << failures
            << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}

// ---- fuzz-ckpt: snapshot framing round-trip/corruption fuzzer ------------

constexpr std::uint32_t kFuzzCkptMagic = 0x5a554643U;  // "CFUZ"
constexpr std::uint32_t kFuzzCkptVersion = 3;

/// Doubles that must round-trip bit-exactly: signed zeros, infinities,
/// NaN, the smallest denormal, plus ordinary magnitudes.
double fuzz_ckpt_double(util::Rng& rng) {
  switch (rng.uniform_int(0, 6)) {
    case 0: return 0.0;
    case 1: return -0.0;
    case 2: return std::numeric_limits<double>::infinity();
    case 3: return -std::numeric_limits<double>::infinity();
    case 4: return std::numeric_limits<double>::quiet_NaN();
    case 5: return std::numeric_limits<double>::denorm_min();
    default: return rng.uniform(-1e12, 1e12);
  }
}

std::uint64_t fuzz_ckpt_u64(util::Rng& rng) {
  const auto hi = static_cast<std::uint64_t>(rng.uniform_int(0, 0xffffffffll));
  const auto lo = static_cast<std::uint64_t>(rng.uniform_int(0, 0xffffffffll));
  return hi << 32 | lo;
}

bool same_bits(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

/// One random tagged value of any wire type, embedded NULs and high bytes
/// included for the variable-length kinds.
struct FuzzCkptValue {
  int type = 0;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double f = 0.0;
  bool b = false;
  std::string s;
  std::vector<std::uint8_t> raw;
};

FuzzCkptValue make_fuzz_ckpt_value(util::Rng& rng) {
  FuzzCkptValue v;
  v.type = static_cast<int>(rng.uniform_int(0, 8));
  switch (v.type) {
    case 0:
      v.u = static_cast<std::uint64_t>(rng.uniform_int(0, 255));
      break;
    case 1:
      v.u = static_cast<std::uint64_t>(rng.uniform_int(0, 0xffffffffll));
      break;
    case 2:
      v.u = fuzz_ckpt_u64(rng);
      break;
    case 3:
      v.i = rng.uniform_int(std::numeric_limits<std::int32_t>::min(),
                            std::numeric_limits<std::int32_t>::max());
      break;
    case 4:
      v.i = static_cast<std::int64_t>(fuzz_ckpt_u64(rng));
      break;
    case 5:
      v.f = fuzz_ckpt_double(rng);
      break;
    case 6:
      v.b = rng.bernoulli(0.5);
      break;
    case 7: {
      const int len = static_cast<int>(rng.uniform_int(0, 24));
      for (int j = 0; j < len; ++j) {
        v.s.push_back(static_cast<char>(rng.uniform_int(0, 255)));
      }
      break;
    }
    default: {
      const int len = static_cast<int>(rng.uniform_int(0, 24));
      for (int j = 0; j < len; ++j) {
        v.raw.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      }
      break;
    }
  }
  return v;
}

/// Properties checked per seed (the checkpoint analogue of fuzz_one):
///  1. a random tagged-value sequence reads back bit-identically and
///     consumes the payload exactly;
///  2. truncating the framed buffer at any prefix length is a structured
///     SnapshotParseError, never a crash or a silent short read;
///  3. flipping any single bit is a SnapshotParseError — CRC32 is linear,
///     so a one-bit payload error cannot collide, and header flips hit
///     the magic/version/length checks.
bool fuzz_ckpt_one(std::uint64_t seed, std::string& why) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ull + 99991ull);
  const int n = 1 + static_cast<int>(rng.uniform_int(0, 63));
  std::vector<FuzzCkptValue> values;
  values.reserve(static_cast<std::size_t>(n));
  util::SnapshotWriter w;
  for (int i = 0; i < n; ++i) {
    values.push_back(make_fuzz_ckpt_value(rng));
    const FuzzCkptValue& v = values.back();
    switch (v.type) {
      case 0: w.u8(static_cast<std::uint8_t>(v.u)); break;
      case 1: w.u32(static_cast<std::uint32_t>(v.u)); break;
      case 2: w.u64(v.u); break;
      case 3: w.i32(static_cast<std::int32_t>(v.i)); break;
      case 4: w.i64(v.i); break;
      case 5: w.f64(v.f); break;
      case 6: w.boolean(v.b); break;
      case 7: w.str(v.s); break;
      default: w.bytes(v.raw); break;
    }
  }
  const std::vector<std::uint8_t> framed =
      w.finish(kFuzzCkptMagic, kFuzzCkptVersion);

  try {
    util::SnapshotReader r(framed, kFuzzCkptMagic, kFuzzCkptVersion);
    for (int i = 0; i < n; ++i) {
      const FuzzCkptValue& v = values[static_cast<std::size_t>(i)];
      bool ok = true;
      switch (v.type) {
        case 0: ok = r.u8() == static_cast<std::uint8_t>(v.u); break;
        case 1: ok = r.u32() == static_cast<std::uint32_t>(v.u); break;
        case 2: ok = r.u64() == v.u; break;
        case 3: ok = r.i32() == static_cast<std::int32_t>(v.i); break;
        case 4: ok = r.i64() == v.i; break;
        case 5: ok = same_bits(r.f64(), v.f); break;
        case 6: ok = r.boolean() == v.b; break;
        case 7: ok = r.str() == v.s; break;
        default: ok = r.bytes() == v.raw; break;
      }
      if (!ok) {
        why = "round-trip mismatch at value " + std::to_string(i) +
              " (type " + std::to_string(v.type) + ")";
        return false;
      }
    }
    r.expect_end();
  } catch (const util::SnapshotParseError& e) {
    why = std::string("clean buffer rejected: ") + e.what();
    return false;
  }

  {
    const auto cut = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(framed.size()) - 1));
    const std::vector<std::uint8_t> truncated(
        framed.begin(), framed.begin() + static_cast<std::ptrdiff_t>(cut));
    try {
      util::SnapshotReader r(truncated, kFuzzCkptMagic, kFuzzCkptVersion);
      why = "truncation to " + std::to_string(cut) + " bytes was accepted";
      return false;
    } catch (const util::SnapshotParseError&) {
    }
  }

  {
    std::vector<std::uint8_t> flipped = framed;
    const auto bit = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(framed.size()) * 8 - 1));
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      util::SnapshotReader r(flipped, kFuzzCkptMagic, kFuzzCkptVersion);
      why = "bit flip at bit " + std::to_string(bit) + " was accepted";
      return false;
    } catch (const util::SnapshotParseError&) {
    }
  }
  return true;
}

int cmd_fuzz_ckpt(const util::Cli& cli) {
  if (cli.has("seed")) {
    const auto seed =
        static_cast<std::uint64_t>(cli.get_int_or("seed", 0));
    std::string why;
    if (fuzz_ckpt_one(seed, why)) {
      std::cout << "fuzz-ckpt: seed " << seed << " ok\n";
      return 0;
    }
    std::cerr << "FAIL seed " << seed << ": " << why << '\n';
    return 1;
  }
  const int seeds = static_cast<int>(cli.get_int_or("seeds", 200));
  int failures = 0;
  for (int s = 0; s < seeds; ++s) {
    std::string why;
    if (fuzz_ckpt_one(static_cast<std::uint64_t>(s), why)) continue;
    std::cerr << "FAIL seed " << s << ": " << why
              << "\n  replay: mecar_cli fuzz-ckpt --seed=" << s << '\n';
    ++failures;
  }
  std::cout << "fuzz-ckpt: " << seeds << " seeds, " << failures
            << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}

/// Table precision a metric defaults to when a spec is run from the CLI
/// (the compiled benches pin their own per-figure precisions).
int metric_precision(const std::string& metric) {
  if (metric == "reward" || metric == "lp_bound" ||
      metric == "baseline_reward") {
    return 1;
  }
  if (metric == "latency") return 2;
  if (metric == "retention" || metric == "fairness" ||
      metric == "mean_util" || metric == "peak_util") {
    return 3;
  }
  return 2;
}

int cmd_experiment(const util::Cli& cli) {
  const std::string path = cli.get_or("spec", "");
  if (path.empty()) {
    std::cerr << "mecar_cli: experiment needs --spec=FILE\n";
    return 1;
  }
  std::ifstream file(path);
  if (!file) {
    std::cerr << "mecar_cli: cannot open scenario '" << path << "'\n";
    return 1;
  }
  exp::ScenarioSpec spec = exp::read_scenario(file);
  // A relative fault_plan references a sibling of the scenario file, not
  // of the process cwd — checked-in scenarios must run from anywhere.
  if (!spec.fault_plan_path.empty() && spec.fault_plan_path.front() != '/' &&
      !std::ifstream(spec.fault_plan_path)) {
    const std::size_t slash = path.find_last_of('/');
    if (slash != std::string::npos) {
      spec.fault_plan_path = path.substr(0, slash + 1) + spec.fault_plan_path;
    }
  }
  exp::Runner runner(std::move(spec));
  if (cli.has("seeds")) {
    runner.set_seeds(static_cast<int>(cli.get_int_or("seeds", 0)));
  }
  if (cli.has("horizon")) {
    runner.set_horizon(static_cast<int>(cli.get_int_or("horizon", 0)));
  }
  if (cli.has("lp-budget")) {
    const int pivots = static_cast<int>(cli.get_int_or("lp-budget", 0));
    if (pivots < 1) {
      std::cerr << "mecar_cli: --lp-budget must be >= 1\n";
      return 1;
    }
    runner.set_lp_budget(pivots);
  }
  if (cli.has("shards")) {
    const int shards = static_cast<int>(cli.get_int_or("shards", 0));
    if (shards < -1) {
      std::cerr << "mecar_cli: --shards must be >= -1\n";
      return 1;
    }
    runner.set_shards(shards);
  }
  exp::CheckpointOptions checkpoint;
  checkpoint.dir = cli.get_or("checkpoint-dir", "");
  checkpoint.every_slots =
      static_cast<int>(cli.get_int_or("checkpoint-every", 0));
  checkpoint.resume = cli.has("resume");
  if (checkpoint.every_slots < 0) {
    std::cerr << "mecar_cli: --checkpoint-every must be >= 0\n";
    return 1;
  }
  if ((checkpoint.resume || checkpoint.every_slots > 0) &&
      checkpoint.dir.empty()) {
    std::cerr << "mecar_cli: --resume/--checkpoint-every need "
                 "--checkpoint-dir=DIR\n";
    return 1;
  }
  if (!checkpoint.dir.empty()) runner.set_checkpoint(checkpoint);
  if (cli.has("crash-at")) {
    sim::arm_crash_at_slot(static_cast<int>(cli.get_int_or("crash-at", -1)));
  }
  if (cli.has("crash-after-units")) {
    sim::arm_crash_after_units(
        static_cast<int>(cli.get_int_or("crash-after-units", 0)));
  }
  // A resumed run must sail past whatever killed it — scripted FaultPlan
  // crash slots included (they already fired in the crashed run).
  if (checkpoint.resume) sim::disarm_crashes();
  exp::TelemetryExportOptions telemetry;
  telemetry.metrics_path = cli.get_or("metrics-out", "");
  telemetry.trace_path = cli.get_or("trace-out", "");
  if (cli.has("trace-capacity")) {
    const std::int64_t capacity = cli.get_int_or("trace-capacity", 0);
    if (capacity <= 0) {
      std::cerr << "mecar_cli: --trace-capacity must be positive\n";
      return 1;
    }
    telemetry.trace_capacity = static_cast<std::size_t>(capacity);
  }
  const exp::Report report = telemetry.any()
                                 ? exp::run_with_telemetry(runner, telemetry)
                                 : runner.run();
  for (const std::string& metric : report.metrics()) {
    report.print_metric_table(std::cout,
                              report.scenario_name() + ": " + metric, metric,
                              metric_precision(metric));
  }
  if (cli.has("json")) {
    const std::string json_path = cli.get_or("json", "").empty()
                                      ? report.scenario_name() + ".json"
                                      : cli.get_or("json", "");
    std::ofstream os(json_path);
    report.write_json(os);
    if (!os.good()) {
      std::cerr << "mecar_cli: cannot write '" << json_path << "'\n";
      return 1;
    }
    std::cout << "json: " << json_path << '\n';
  }
  if (!telemetry.metrics_path.empty()) {
    std::cout << "metrics: " << telemetry.metrics_path << '\n';
  }
  if (!telemetry.trace_path.empty()) {
    std::cout << "trace: " << telemetry.trace_path << '\n';
  }
  return 0;
}

int cmd_metrics(const util::Cli&) {
  // Touching the catalog registers every well-known metric, so the
  // inventory is complete without running anything.
  obs::metrics();
  util::Table table({"metric", "kind", "help"});
  for (const obs::MetricDescriptor& d : obs::registry().descriptors()) {
    table.add_row({d.name, std::string(obs::to_string(d.kind)), d.help});
  }
  table.print(std::cout,
              std::string("telemetry metrics (recording ") +
                  (MECAR_TELEMETRY_ENABLED ? "enabled" : "compiled out") +
                  ")");
  return 0;
}

int cmd_list(const util::Cli&) {
  const exp::PolicyRegistry& registry = exp::PolicyRegistry::global();
  std::cout << "offline algorithms (policy NAME | policy offline:NAME):\n";
  for (const std::string& name : registry.offline_names()) {
    std::cout << "  " << name << '\n';
  }
  std::cout << "online policies (policy NAME | policy online:NAME):\n";
  for (const std::string& name : registry.online_names()) {
    std::cout << "  " << name << '\n';
  }
  std::cout <<
      "scenario keys (one per line; # comments; see scenarios/*.scenario):\n"
      "  name kind axis points seeds horizon requests stations rate_min\n"
      "  rate_max reward_model arrivals home_skew link_bandwidth policy\n"
      "  metric policy_seed_offset chaos fault_plan mobility\n"
      "  threshold_range kappa scale_thresholds threshold_headroom\n"
      "  rounding_divisor backfill enforce_backhaul backhaul_audit\n"
      "  collect_detail requests_per_slot lp_max_iterations lp_budget\n"
      "  shards incremental_lp\n";
  return 0;
}

void usage() {
  std::cout <<
      "usage: mecar_cli "
      "<offline|online|resilience|experiment|metrics|list|topology|trace"
      "|lp|fuzz-lp|fuzz-ckpt> [flags]\n"
      "  common flags: --seed=N --requests=N --stations=N\n"
      "  online:       --horizon=N\n"
      "  resilience:   --horizon=N --plan=FILE | --chaos=INTENSITY "
      "[--emit-plan]\n"
      "  experiment:   --spec=FILE [--seeds=N] [--horizon=N] "
      "[--lp-budget=N]\n"
      "                [--shards=N]  (sharded slot loop; -1 forces legacy)\n"
      "                [--json[=PATH]]\n"
      "                [--metrics-out=FILE(.prom|.json)] "
      "[--trace-out=FILE]\n"
      "                [--trace-capacity=N]\n"
      "                [--checkpoint-dir=DIR [--checkpoint-every=SLOTS] "
      "[--resume]]\n"
      "                [--crash-at=SLOT] [--crash-after-units=N]  "
      "(SIGKILL injection)\n"
      "  metrics:      (no flags) telemetry metric inventory\n"
      "  list:         (no flags) policy registry + scenario keys\n"
      "  trace:        --duration=SECONDS --frame-kb=KB\n"
      "  fuzz-lp:      [--seeds=N] | --seed=K  differential LP fuzzer\n"
      "  fuzz-ckpt:    [--seeds=N] | --seed=K  snapshot framing fuzzer\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.positional().empty() || cli.has("help")) {
    usage();
    return cli.positional().empty() && !cli.has("help") ? 1 : 0;
  }
  const std::string& command = cli.positional().front();
  try {
    if (command == "offline") return cmd_offline(cli);
    if (command == "online") return cmd_online(cli);
    if (command == "resilience") return cmd_resilience(cli);
    if (command == "experiment") return cmd_experiment(cli);
    if (command == "metrics") return cmd_metrics(cli);
    if (command == "list") return cmd_list(cli);
    if (command == "topology") return cmd_topology(cli);
    if (command == "trace") return cmd_trace(cli);
    if (command == "lp") return cmd_lp(cli);
    if (command == "fuzz-lp") return cmd_fuzz_lp(cli);
    if (command == "fuzz-ckpt") return cmd_fuzz_ckpt(cli);
  } catch (const std::exception& error) {
    std::cerr << "mecar_cli: " << error.what() << '\n';
    return 1;
  }
  std::cerr << "mecar_cli: unknown command '" << command << "'\n";
  usage();
  return 1;
}
