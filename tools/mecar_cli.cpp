// mecar command-line front-end.
//
// Subcommands:
//   offline     run the offline algorithms on a generated instance
//   online      run the online policies over a slotted horizon
//   resilience  run the online policies under an injected fault scenario
//               (scripted --plan=FILE or seeded --chaos=INTENSITY) and
//               print the resilience metrics per policy
//   experiment  run a declarative scenario file through the scenario
//               engine (see scenarios/*.scenario) and print its tables;
//               --metrics-out/--trace-out export telemetry
//   metrics     list every registered telemetry metric (the inventory)
//   list        print the policy registry and the scenario-file keys
//   topology    generate a topology and print its stations/links as CSV
//   trace       synthesize a frame-level AR session trace as CSV
//   lp          dump the slot-indexed LP of an instance in MPS format
//
// Common flags: --seed=N --requests=N --stations=N. Subcommand-specific
// flags are listed by `mecar_cli <subcommand> --help`.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>

#include "baselines/greedy.h"
#include "exp/registry.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/telemetry.h"
#include "obs/catalog.h"
#include "obs/telemetry.h"
#include "baselines/heu_kkt.h"
#include "baselines/ocorp.h"
#include "core/appro.h"
#include "core/heu.h"
#include "core/slot_lp.h"
#include "lp/mps.h"
#include "mec/topology.h"
#include "mec/trace.h"
#include "mec/workload.h"
#include "sim/dynamic_rr.h"
#include "sim/fault_plan.h"
#include "sim/metrics.h"
#include "sim/online_baselines.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace mecar;

struct Common {
  std::uint64_t seed;
  int requests;
  int stations;
};

Common common_flags(const util::Cli& cli) {
  return Common{
      static_cast<std::uint64_t>(cli.get_int_or("seed", 42)),
      static_cast<int>(cli.get_int_or("requests", 150)),
      static_cast<int>(cli.get_int_or("stations", 20)),
  };
}

mec::Topology make_topology(const Common& common, util::Rng& rng) {
  mec::TopologyParams params;
  params.num_stations = common.stations;
  return mec::generate_topology(params, rng);
}

int cmd_offline(const util::Cli& cli) {
  const Common common = common_flags(cli);
  util::Rng rng(common.seed);
  const mec::Topology topo = make_topology(common, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = common.requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);
  const core::AlgorithmParams params;

  util::Table table({"algorithm", "reward ($)", "rewarded", "admitted",
                     "avg latency (ms)"});
  auto report = [&](const std::string& name,
                    const core::OffloadResult& result) {
    table.add_row({name, util::format_double(result.total_reward(), 1),
                   std::to_string(result.num_rewarded()),
                   std::to_string(result.num_admitted()),
                   util::format_double(result.average_latency_ms(), 1)});
  };
  {
    util::Rng r(common.seed + 1);
    report("Appro", core::run_appro(topo, requests, realized, params, r));
  }
  {
    util::Rng r(common.seed + 1);
    report("Heu", core::run_heu(topo, requests, realized, params, r));
  }
  report("Greedy", baselines::run_greedy(topo, requests, realized, params));
  report("OCORP", baselines::run_ocorp(topo, requests, realized, params));
  report("HeuKKT", baselines::run_heu_kkt(topo, requests, realized, params));
  table.print(std::cout, "offline instance, seed " +
                             std::to_string(common.seed));
  return 0;
}

int cmd_online(const util::Cli& cli) {
  const Common common = common_flags(cli);
  const int horizon = static_cast<int>(cli.get_int_or("horizon", 600));
  util::Rng rng(common.seed);
  const mec::Topology topo = make_topology(common, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = common.requests;
  wparams.horizon_slots = horizon;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);
  sim::OnlineParams params;
  params.horizon_slots = horizon;
  params.collect_detail = true;

  util::Table table({"policy", "reward ($)", "completed", "dropped",
                     "p95 lat (ms)", "fairness", "mean util"});
  auto run = [&](sim::OnlinePolicy& policy) {
    sim::OnlineSimulator simulator(topo, requests, realized, params);
    const auto m = simulator.run(policy);
    const auto s = sim::summarize(m);
    table.add_row({policy.name(), util::format_double(m.total_reward, 1),
                   std::to_string(m.completed), std::to_string(m.dropped),
                   util::format_double(s.latency_p95_ms, 1),
                   util::format_double(s.service_fairness, 3),
                   util::format_double(s.mean_utilization, 3)});
  };
  {
    sim::DynamicRrPolicy policy(topo, core::AlgorithmParams{},
                                sim::DynamicRrParams{},
                                util::Rng(common.seed + 1));
    run(policy);
  }
  {
    sim::GreedyOnlinePolicy policy(topo, core::AlgorithmParams{});
    run(policy);
  }
  {
    sim::OcorpOnlinePolicy policy(topo, core::AlgorithmParams{});
    run(policy);
  }
  {
    sim::HeuKktOnlinePolicy policy(topo, core::AlgorithmParams{});
    run(policy);
  }
  table.print(std::cout, "online horizon " + std::to_string(horizon) +
                             " slots, seed " + std::to_string(common.seed));
  return 0;
}

int cmd_resilience(const util::Cli& cli) {
  const Common common = common_flags(cli);
  const int horizon = static_cast<int>(cli.get_int_or("horizon", 600));
  util::Rng rng(common.seed);
  const mec::Topology topo = make_topology(common, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = common.requests;
  wparams.horizon_slots = horizon;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);

  // Fault scenario: a versioned script (--plan=FILE) or a seeded chaos
  // draw (--chaos=INTENSITY). --emit-plan prints the active plan in the
  // scenario format so a chaos draw can be saved and replayed.
  sim::FaultPlan plan;
  if (const auto path = cli.get("plan"); path && !path->empty()) {
    std::ifstream file(*path);
    if (!file) {
      std::cerr << "mecar_cli: cannot open fault plan '" << *path << "'\n";
      return 1;
    }
    plan = sim::read_fault_plan(file);
  } else {
    sim::ChaosParams chaos;
    chaos.intensity = cli.get_double_or("chaos", 0.5);
    util::Rng chaos_rng(static_cast<unsigned>(common.seed) * 2654435761u +
                        17u);
    plan = sim::generate_chaos(topo, chaos, horizon, chaos_rng);
  }
  plan.validate(topo);
  if (cli.has("emit-plan")) {
    sim::write_fault_plan(plan, std::cout);
    std::cout << '\n';
  }

  sim::OnlineParams params;
  params.horizon_slots = horizon;
  util::Table table({"policy", "reward ($)", "retention", "displaced",
                     "recovered", "mean rec (slots)", "drop starve",
                     "drop fault", "drop cut"});
  auto run = [&](sim::OnlinePolicy& healthy, sim::OnlinePolicy& policy) {
    sim::OnlineSimulator ref_sim(topo, requests, realized, params);
    const auto ref = ref_sim.run(healthy);
    sim::OnlineParams faulted = params;
    faulted.faults = plan;
    sim::OnlineSimulator simulator(topo, requests, realized, faulted);
    const auto m = simulator.run(policy);
    const auto& rs = m.resilience;
    table.add_row(
        {policy.name(), util::format_double(m.total_reward, 1),
         util::format_double(ref.total_reward > 0.0
                                 ? m.total_reward / ref.total_reward
                                 : 1.0,
                             3),
         std::to_string(m.displaced), std::to_string(rs.recovered),
         util::format_double(rs.mean_recovery_slots, 2),
         std::to_string(rs.dropped_starvation),
         std::to_string(rs.dropped_fault),
         std::to_string(rs.dropped_partition)});
  };
  {
    sim::DynamicRrPolicy healthy(topo, core::AlgorithmParams{},
                                 sim::DynamicRrParams{},
                                 util::Rng(common.seed + 1));
    sim::DynamicRrPolicy policy(topo, core::AlgorithmParams{},
                                sim::DynamicRrParams{},
                                util::Rng(common.seed + 1));
    run(healthy, policy);
  }
  {
    sim::GreedyOnlinePolicy healthy(topo, core::AlgorithmParams{});
    sim::GreedyOnlinePolicy policy(topo, core::AlgorithmParams{});
    run(healthy, policy);
  }
  {
    sim::OcorpOnlinePolicy healthy(topo, core::AlgorithmParams{});
    sim::OcorpOnlinePolicy policy(topo, core::AlgorithmParams{});
    run(healthy, policy);
  }
  {
    sim::HeuKktOnlinePolicy healthy(topo, core::AlgorithmParams{});
    sim::HeuKktOnlinePolicy policy(topo, core::AlgorithmParams{});
    run(healthy, policy);
  }
  table.print(std::cout, "resilience, " + std::to_string(plan.num_events()) +
                             " fault events, horizon " +
                             std::to_string(horizon) + " slots, seed " +
                             std::to_string(common.seed));
  return 0;
}

int cmd_topology(const util::Cli& cli) {
  const Common common = common_flags(cli);
  util::Rng rng(common.seed);
  const mec::Topology topo = make_topology(common, rng);
  std::cout << "station_id,capacity_mhz,proc_ms_per_unit,x,y\n";
  for (const mec::BaseStation& bs : topo.stations()) {
    std::cout << bs.id << ',' << bs.capacity_mhz << ','
              << bs.proc_ms_per_unit << ',' << bs.x << ',' << bs.y << '\n';
  }
  std::cout << "\nlink_a,link_b,delay_ms,bandwidth_mbps\n";
  for (const mec::Link& link : topo.links()) {
    std::cout << link.a << ',' << link.b << ',' << link.delay_ms << ','
              << link.bandwidth_mbps << '\n';
  }
  return 0;
}

int cmd_trace(const util::Cli& cli) {
  const Common common = common_flags(cli);
  util::Rng rng(common.seed);
  mec::TraceParams params;
  params.duration_s = cli.get_double_or("duration", 10.0);
  params.frame_kb_mean = cli.get_double_or("frame-kb", 64.0);
  const auto trace = mec::synthesize_trace(params, rng);
  trace.write_csv(std::cout);
  std::cerr << "# " << trace.size() << " frames, "
            << util::format_double(trace.average_rate_mbps(), 2)
            << " MB/s average\n";
  return 0;
}

int cmd_lp(const util::Cli& cli) {
  const Common common = common_flags(cli);
  util::Rng rng(common.seed);
  const mec::Topology topo = make_topology(common, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = common.requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto inst =
      core::build_slot_lp(topo, requests, core::AlgorithmParams{});
  lp::write_mps(inst.model, std::cout, "mecar_slot_lp");
  std::cerr << "# " << inst.model.num_variables() << " columns, "
            << inst.model.num_constraints() << " rows\n";
  return 0;
}

/// Table precision a metric defaults to when a spec is run from the CLI
/// (the compiled benches pin their own per-figure precisions).
int metric_precision(const std::string& metric) {
  if (metric == "reward" || metric == "lp_bound" ||
      metric == "baseline_reward") {
    return 1;
  }
  if (metric == "latency") return 2;
  if (metric == "retention" || metric == "fairness" ||
      metric == "mean_util" || metric == "peak_util") {
    return 3;
  }
  return 2;
}

int cmd_experiment(const util::Cli& cli) {
  const std::string path = cli.get_or("spec", "");
  if (path.empty()) {
    std::cerr << "mecar_cli: experiment needs --spec=FILE\n";
    return 1;
  }
  std::ifstream file(path);
  if (!file) {
    std::cerr << "mecar_cli: cannot open scenario '" << path << "'\n";
    return 1;
  }
  exp::Runner runner(exp::read_scenario(file));
  if (cli.has("seeds")) {
    runner.set_seeds(static_cast<int>(cli.get_int_or("seeds", 0)));
  }
  if (cli.has("horizon")) {
    runner.set_horizon(static_cast<int>(cli.get_int_or("horizon", 0)));
  }
  exp::TelemetryExportOptions telemetry;
  telemetry.metrics_path = cli.get_or("metrics-out", "");
  telemetry.trace_path = cli.get_or("trace-out", "");
  if (cli.has("trace-capacity")) {
    const std::int64_t capacity = cli.get_int_or("trace-capacity", 0);
    if (capacity <= 0) {
      std::cerr << "mecar_cli: --trace-capacity must be positive\n";
      return 1;
    }
    telemetry.trace_capacity = static_cast<std::size_t>(capacity);
  }
  const exp::Report report = telemetry.any()
                                 ? exp::run_with_telemetry(runner, telemetry)
                                 : runner.run();
  for (const std::string& metric : report.metrics()) {
    report.print_metric_table(std::cout,
                              report.scenario_name() + ": " + metric, metric,
                              metric_precision(metric));
  }
  if (cli.has("json")) {
    const std::string json_path = cli.get_or("json", "").empty()
                                      ? report.scenario_name() + ".json"
                                      : cli.get_or("json", "");
    std::ofstream os(json_path);
    report.write_json(os);
    if (!os.good()) {
      std::cerr << "mecar_cli: cannot write '" << json_path << "'\n";
      return 1;
    }
    std::cout << "json: " << json_path << '\n';
  }
  if (!telemetry.metrics_path.empty()) {
    std::cout << "metrics: " << telemetry.metrics_path << '\n';
  }
  if (!telemetry.trace_path.empty()) {
    std::cout << "trace: " << telemetry.trace_path << '\n';
  }
  return 0;
}

int cmd_metrics(const util::Cli&) {
  // Touching the catalog registers every well-known metric, so the
  // inventory is complete without running anything.
  obs::metrics();
  util::Table table({"metric", "kind", "help"});
  for (const obs::MetricDescriptor& d : obs::registry().descriptors()) {
    table.add_row({d.name, std::string(obs::to_string(d.kind)), d.help});
  }
  table.print(std::cout,
              std::string("telemetry metrics (recording ") +
                  (MECAR_TELEMETRY_ENABLED ? "enabled" : "compiled out") +
                  ")");
  return 0;
}

int cmd_list(const util::Cli&) {
  const exp::PolicyRegistry& registry = exp::PolicyRegistry::global();
  std::cout << "offline algorithms (policy NAME | policy offline:NAME):\n";
  for (const std::string& name : registry.offline_names()) {
    std::cout << "  " << name << '\n';
  }
  std::cout << "online policies (policy NAME | policy online:NAME):\n";
  for (const std::string& name : registry.online_names()) {
    std::cout << "  " << name << '\n';
  }
  std::cout <<
      "scenario keys (one per line; # comments; see scenarios/*.scenario):\n"
      "  name kind axis points seeds horizon requests stations rate_min\n"
      "  rate_max reward_model arrivals home_skew link_bandwidth policy\n"
      "  metric policy_seed_offset chaos fault_plan mobility\n"
      "  threshold_range kappa scale_thresholds threshold_headroom\n"
      "  rounding_divisor backfill enforce_backhaul backhaul_audit\n"
      "  collect_detail requests_per_slot\n";
  return 0;
}

void usage() {
  std::cout <<
      "usage: mecar_cli "
      "<offline|online|resilience|experiment|metrics|list|topology|trace"
      "|lp> [flags]\n"
      "  common flags: --seed=N --requests=N --stations=N\n"
      "  online:       --horizon=N\n"
      "  resilience:   --horizon=N --plan=FILE | --chaos=INTENSITY "
      "[--emit-plan]\n"
      "  experiment:   --spec=FILE [--seeds=N] [--horizon=N] "
      "[--json[=PATH]]\n"
      "                [--metrics-out=FILE(.prom|.json)] "
      "[--trace-out=FILE]\n"
      "                [--trace-capacity=N]\n"
      "  metrics:      (no flags) telemetry metric inventory\n"
      "  list:         (no flags) policy registry + scenario keys\n"
      "  trace:        --duration=SECONDS --frame-kb=KB\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.positional().empty() || cli.has("help")) {
    usage();
    return cli.positional().empty() && !cli.has("help") ? 1 : 0;
  }
  const std::string& command = cli.positional().front();
  try {
    if (command == "offline") return cmd_offline(cli);
    if (command == "online") return cmd_online(cli);
    if (command == "resilience") return cmd_resilience(cli);
    if (command == "experiment") return cmd_experiment(cli);
    if (command == "metrics") return cmd_metrics(cli);
    if (command == "list") return cmd_list(cli);
    if (command == "topology") return cmd_topology(cli);
    if (command == "trace") return cmd_trace(cli);
    if (command == "lp") return cmd_lp(cli);
  } catch (const std::exception& error) {
    std::cerr << "mecar_cli: " << error.what() << '\n';
    return 1;
  }
  std::cerr << "mecar_cli: unknown command '" << command << "'\n";
  usage();
  return 1;
}
