// Tests for the offline baselines (Greedy [32], OCORP [20], HeuKKT [21]):
// admission rules, reservation semantics, locality, and cross-algorithm
// ordering properties used by the figure benches.
#include <gtest/gtest.h>

#include <set>

#include "baselines/greedy.h"
#include "baselines/heu_kkt.h"
#include "baselines/ocorp.h"
#include "core/appro.h"
#include "core/heu.h"
#include "mec/workload.h"
#include "util/rng.h"

namespace mecar::baselines {
namespace {

using core::AlgorithmParams;
using core::OffloadResult;

mec::Topology tiny_topology() {
  std::vector<mec::BaseStation> stations{
      {0, 2200.0, 1.0, 0.0, 0.0},  // fits two peak reservations of 1000
      {1, 2200.0, 2.0, 1.0, 0.0},
  };
  std::vector<mec::Link> links{{0, 1, 2.0}};
  return mec::Topology(std::move(stations), std::move(links));
}

mec::ARRequest request_with(int id, int home, double reward) {
  mec::ARRequest req;
  req.id = id;
  req.home_station = home;
  req.tasks = mec::ar_pipeline(3);
  req.demand =
      mec::RateRewardDist({{30.0, 0.5, reward}, {50.0, 0.5, reward}});
  req.latency_budget_ms = 200.0;
  return req;
}

TEST(Greedy, PeakReservationNeverOverflows) {
  const mec::Topology topo = tiny_topology();
  std::vector<mec::ARRequest> requests;
  std::vector<std::size_t> realized;
  for (int j = 0; j < 10; ++j) {
    requests.push_back(request_with(j, j % 2, 500.0));
    realized.push_back(1);  // everyone realizes the 50 MB/s peak
  }
  const auto result = run_greedy(topo, requests, realized, AlgorithmParams{});
  // Peak demand = 1000 MHz, station capacity 2200 -> 2 per station, and
  // every admitted request is rewarded (the reservation always covers).
  EXPECT_EQ(result.num_admitted(), 4);
  EXPECT_EQ(result.num_rewarded(), result.num_admitted());
  // Station usage never exceeds capacity even at peak realization.
  std::vector<double> used(2, 0.0);
  for (const auto& o : result.outcomes) {
    if (o.admitted) used[static_cast<std::size_t>(o.station)] += 1000.0;
  }
  EXPECT_LE(used[0], 2200.0);
  EXPECT_LE(used[1], 2200.0);
}

TEST(Greedy, PrefersLowLatencyStations) {
  const mec::Topology topo = tiny_topology();
  std::vector<mec::ARRequest> requests{request_with(0, 0, 500.0)};
  const std::vector<std::size_t> realized{0};
  const auto result = run_greedy(topo, requests, realized, AlgorithmParams{});
  ASSERT_TRUE(result.outcomes[0].admitted);
  EXPECT_EQ(result.outcomes[0].station, 0);  // home is latency-optimal
}

TEST(Greedy, BigJobsFirstCanStarveSmallOnes) {
  // One station, room for one peak reservation; the longer pipeline must
  // win the slot ("sorts tasks in a decreasing order of execution times").
  std::vector<mec::BaseStation> stations{{0, 1100.0, 1.0, 0.0, 0.0}};
  const mec::Topology topo(std::move(stations), {});
  mec::ARRequest small = request_with(0, 0, 500.0);
  small.tasks = mec::ar_pipeline(3);
  mec::ARRequest big = request_with(1, 0, 100.0);
  big.tasks = mec::ar_pipeline(5);
  const std::vector<std::size_t> realized{0, 0};
  const auto result =
      run_greedy(topo, {small, big}, realized, AlgorithmParams{});
  EXPECT_FALSE(result.outcomes[0].admitted);
  EXPECT_TRUE(result.outcomes[1].admitted);
}

TEST(Greedy, MismatchedRealizationThrows) {
  const mec::Topology topo = tiny_topology();
  std::vector<mec::ARRequest> requests{request_with(0, 0, 500.0)};
  EXPECT_THROW(run_greedy(topo, requests, {}, AlgorithmParams{}),
               std::invalid_argument);
}

TEST(Ocorp, BestFitPacksTightStations) {
  // Station 0 has less remaining room after one admission; best-fit sends
  // the next request there while first-fit-by-latency would not care.
  std::vector<mec::BaseStation> stations{
      {0, 1100.0, 1.0, 0.0, 0.0},
      {1, 3000.0, 1.0, 0.1, 0.0},
  };
  std::vector<mec::Link> links{{0, 1, 1.0}};
  const mec::Topology topo(std::move(stations), std::move(links));
  std::vector<mec::ARRequest> requests{request_with(0, 0, 500.0)};
  const std::vector<std::size_t> realized{0};
  const auto result = run_ocorp(topo, requests, realized, AlgorithmParams{});
  ASSERT_TRUE(result.outcomes[0].admitted);
  EXPECT_EQ(result.outcomes[0].station, 0);  // smaller residual that fits
}

TEST(Ocorp, ArrivalOrderIsRespected) {
  // One peak slot; the earlier arrival gets it.
  std::vector<mec::BaseStation> stations{{0, 1100.0, 1.0, 0.0, 0.0}};
  const mec::Topology topo(std::move(stations), {});
  mec::ARRequest early = request_with(0, 0, 100.0);
  early.arrival_slot = 0;
  mec::ARRequest late = request_with(1, 0, 900.0);
  late.arrival_slot = 5;
  const std::vector<std::size_t> realized{0, 0};
  const auto result =
      run_ocorp(topo, {early, late}, realized, AlgorithmParams{});
  EXPECT_TRUE(result.outcomes[0].admitted);
  EXPECT_FALSE(result.outcomes[1].admitted);
}

TEST(Ocorp, AdmittedAlwaysRewarded) {
  util::Rng rng(3);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 60;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);
  const auto result = run_ocorp(topo, requests, realized, AlgorithmParams{});
  EXPECT_EQ(result.num_admitted(), result.num_rewarded());
}

TEST(HeuKkt, HomeFirstPlacement) {
  const mec::Topology topo = tiny_topology();
  std::vector<mec::ARRequest> requests{request_with(0, 1, 500.0)};
  const std::vector<std::size_t> realized{0};
  const auto result =
      run_heu_kkt(topo, requests, realized, AlgorithmParams{});
  ASSERT_TRUE(result.outcomes[0].admitted);
  EXPECT_EQ(result.outcomes[0].station, 1);
}

TEST(HeuKkt, WaterFillingAdmitsSmallDemandsFirst) {
  // Home station with room for one mean commitment (800 MHz): the smaller
  // expected demand wins; the larger overflows to the neighbour.
  std::vector<mec::BaseStation> stations{
      {0, 900.0, 1.0, 0.0, 0.0},
      {1, 3000.0, 1.0, 0.5, 0.0},
  };
  std::vector<mec::Link> links{{0, 1, 1.0}};
  const mec::Topology topo(std::move(stations), std::move(links));
  mec::ARRequest small = request_with(0, 0, 100.0);
  small.demand = mec::RateRewardDist({{40.0, 1.0, 100.0}});  // 800 MHz
  mec::ARRequest smaller = request_with(1, 0, 900.0);
  smaller.demand = mec::RateRewardDist({{35.0, 1.0, 900.0}});  // 700 MHz
  const std::vector<std::size_t> realized{0, 0};
  const auto result =
      run_heu_kkt(topo, {small, smaller}, realized, AlgorithmParams{});
  ASSERT_TRUE(result.outcomes[1].admitted);
  EXPECT_EQ(result.outcomes[1].station, 0);  // smaller demand stays home
  ASSERT_TRUE(result.outcomes[0].admitted);
  EXPECT_EQ(result.outcomes[0].station, 1);  // overflow to neighbour
}

TEST(HeuKkt, OverflowBeyondNeighbourhoodIsLost) {
  // Home + one tiny neighbour: the third request goes to the remote cloud
  // (not admitted, no reward).
  std::vector<mec::BaseStation> stations{
      {0, 900.0, 1.0, 0.0, 0.0},
      {1, 900.0, 1.0, 0.5, 0.0},
  };
  std::vector<mec::Link> links{{0, 1, 1.0}};
  const mec::Topology topo(std::move(stations), std::move(links));
  std::vector<mec::ARRequest> requests;
  std::vector<std::size_t> realized;
  for (int j = 0; j < 3; ++j) {
    mec::ARRequest req = request_with(j, 0, 100.0);
    req.demand = mec::RateRewardDist({{40.0, 1.0, 100.0}});
    requests.push_back(req);
    realized.push_back(0);
  }
  const auto result =
      run_heu_kkt(topo, requests, realized, AlgorithmParams{});
  EXPECT_EQ(result.num_admitted(), 2);
}

TEST(HeuKkt, MeanCommitmentCanOverflowOnRealization) {
  // Commitments are means; when everyone realizes the peak, the last
  // admitted request does not fit and earns nothing (uncertainty penalty).
  std::vector<mec::BaseStation> stations{{0, 1700.0, 1.0, 0.0, 0.0}};
  const mec::Topology topo(std::move(stations), {});
  std::vector<mec::ARRequest> requests{
      request_with(0, 0, 500.0),  // mean 40 -> commit 800
      request_with(1, 0, 500.0),
  };
  const std::vector<std::size_t> realized{1, 1};  // both realize 50 -> 1000
  const auto result =
      run_heu_kkt(topo, requests, realized, AlgorithmParams{});
  EXPECT_EQ(result.num_admitted(), 2);
  EXPECT_EQ(result.num_rewarded(), 1);
}

// --- Cross-algorithm ordering on the paper's default workload -----------

class OrderingSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(OrderingSeeds, RewardAwareAlgorithmsDominateUnderSaturation) {
  util::Rng rng(GetParam());
  mec::TopologyParams tparams;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 250;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);
  AlgorithmParams params;

  util::Rng round_rng(GetParam() + 500);
  const double heu = core::run_heu(topo, requests, realized, params, round_rng)
                         .total_reward();
  const double greedy =
      run_greedy(topo, requests, realized, params).total_reward();
  const double ocorp =
      run_ocorp(topo, requests, realized, params).total_reward();
  const double kkt =
      run_heu_kkt(topo, requests, realized, params).total_reward();

  // Paper Fig. 3(a): Heu > HeuKKT > {OCORP, Greedy} under saturation.
  EXPECT_GT(heu, kkt);
  EXPECT_GT(kkt, greedy);
  EXPECT_GT(kkt, ocorp);
  // And the headline magnitude: Heu clearly above the local baselines.
  EXPECT_GT(heu, 1.2 * std::max(greedy, ocorp));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingSeeds, ::testing::Values(7u, 23u, 41u));

}  // namespace
}  // namespace mecar::baselines
