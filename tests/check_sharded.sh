#!/usr/bin/env sh
# Sharding bit-identity proof: the whole golden suite must reproduce its
# reference outputs with the sharded slot loop forced on — once with a
# single shard and once with eight — via the MECAR_SHARDS environment
# variable (OnlineParams::num_shards == 0 consults it, and every bench
# leaves the field at its default). Any divergence from the legacy loop's
# floating-point accumulation order shows up here as a golden mismatch.
#
#   tests/check_sharded.sh [BUILD_DIR]   (default: build)
set -u
build=${1:-build}
root=$(cd "$(dirname "$0")/.." && pwd)
fail=0

for shards in 1 8; do
  echo "== golden suite under MECAR_SHARDS=$shards =="
  if MECAR_SHARDS=$shards "$root/tests/check_golden.sh" "$build"; then
    echo "ok: sharded($shards) == legacy on all goldens"
  else
    echo "MISMATCH under MECAR_SHARDS=$shards" >&2
    fail=1
  fi
done
exit $fail
