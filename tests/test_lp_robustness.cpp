// Numerical-robustness property tests for both simplex engines: badly
// scaled rows/columns, degenerate ties, redundant rows, and larger sparse
// instances; the two engines must agree with each other and stay feasible.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "lp/revised_simplex.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace mecar::lp {
namespace {

class ScalingSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ScalingSweep, EnginesAgreeUnderBadScaling) {
  util::Rng rng(GetParam());
  Model m;
  const int n = static_cast<int>(rng.uniform_int(4, 16));
  const int rows = static_cast<int>(rng.uniform_int(3, 10));
  for (int j = 0; j < n; ++j) {
    // Objective magnitudes across 6 decades.
    const double scale = std::pow(10.0, rng.uniform(-3.0, 3.0));
    m.add_variable("x" + std::to_string(j), rng.uniform(0.1, 1.0) * scale,
                   rng.uniform(0.5, 2.0) / scale);
  }
  for (int r = 0; r < rows; ++r) {
    const double row_scale = std::pow(10.0, rng.uniform(-2.0, 2.0));
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.6)) {
        terms.push_back({j, rng.uniform(0.1, 2.0) * row_scale});
      }
    }
    if (terms.empty()) terms.push_back({0, row_scale});
    m.add_constraint("r" + std::to_string(r), Sense::kLe,
                     rng.uniform(1.0, 5.0) * row_scale, terms);
  }
  const auto dense = SimplexSolver().solve(m);
  const auto revised = RevisedSimplexSolver().solve(m);
  ASSERT_TRUE(dense.optimal());
  ASSERT_TRUE(revised.optimal());
  const double tol = 1e-5 * std::max(1.0, std::abs(dense.objective));
  EXPECT_NEAR(dense.objective, revised.objective, tol);
  EXPECT_LE(m.max_violation(dense.x), 1e-5);
  EXPECT_LE(m.max_violation(revised.x), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalingSweep, ::testing::Range(100u, 120u));

TEST(Robustness, ManyRedundantRows) {
  Model m;
  const int x = m.add_variable("x", 1.0);
  const int y = m.add_variable("y", 1.0);
  for (int r = 0; r < 30; ++r) {
    // The same constraint thirty times (plus jitter in naming only).
    m.add_constraint("dup" + std::to_string(r), Sense::kLe, 10.0,
                     {{x, 1.0}, {y, 1.0}});
  }
  const SolveResult results[] = {SimplexSolver().solve(m),
                                 RevisedSimplexSolver().solve(m)};
  for (const SolveResult& result : results) {
    ASSERT_TRUE(result.optimal());
    EXPECT_NEAR(result.objective, 10.0, 1e-6);
  }
}

TEST(Robustness, HighlyDegenerateVertex) {
  // Many constraints through the same optimal vertex (2, 2).
  Model m;
  const int x = m.add_variable("x", 1.0);
  const int y = m.add_variable("y", 1.0);
  for (int k = 1; k <= 12; ++k) {
    m.add_constraint("c" + std::to_string(k), Sense::kLe,
                     2.0 * (1.0 + k) , {{x, 1.0}, {y, static_cast<double>(k)}});
  }
  m.add_constraint("cap_x", Sense::kLe, 2.0, {{x, 1.0}});
  m.add_constraint("cap_y", Sense::kLe, 2.0, {{y, 1.0}});
  const auto dense = SimplexSolver().solve(m);
  const auto revised = RevisedSimplexSolver().solve(m);
  ASSERT_TRUE(dense.optimal());
  ASSERT_TRUE(revised.optimal());
  EXPECT_NEAR(dense.objective, revised.objective, 1e-7);
}

TEST(Robustness, LargerSparseInstanceStaysConsistent) {
  util::Rng rng(7);
  Model m;
  const int n = 400;
  const int rows = 80;
  for (int j = 0; j < n; ++j) {
    m.add_variable("x" + std::to_string(j), rng.uniform(0.1, 1.0), 1.0);
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int hits = 0; hits < 6; ++hits) {
      terms.push_back({static_cast<int>(rng.uniform_int(0, n - 1)),
                       rng.uniform(0.2, 1.0)});
    }
    m.add_constraint("r" + std::to_string(r), Sense::kLe,
                     rng.uniform(1.0, 3.0), terms);
  }
  const auto dense = SimplexSolver().solve(m);
  const auto revised = RevisedSimplexSolver().solve(m);
  ASSERT_TRUE(dense.optimal());
  ASSERT_TRUE(revised.optimal());
  EXPECT_NEAR(dense.objective, revised.objective,
              1e-6 * std::max(1.0, dense.objective));
}

TEST(Robustness, TinyCoefficientsAreNotTreatedAsZero) {
  Model m;
  const int x = m.add_variable("x", 1.0);
  m.add_constraint("c", Sense::kLe, 1e-6, {{x, 1e-6}});
  const auto res = SimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.x[static_cast<std::size_t>(x)], 1.0, 1e-4);
}

// ---- recovery ladder ------------------------------------------------------

/// A small LP whose cold solve needs several pivots, so injected faults
/// actually land mid-solve.
Model ladder_lp() {
  Model m;
  const int x = m.add_variable("x", 3.0);
  const int y = m.add_variable("y", 2.0);
  const int z = m.add_variable("z", 4.0);
  m.add_constraint("c1", Sense::kLe, 10.0, {{x, 1.0}, {y, 1.0}, {z, 2.0}});
  m.add_constraint("c2", Sense::kLe, 8.0, {{x, 2.0}, {y, 1.0}});
  m.add_constraint("c3", Sense::kLe, 6.0, {{y, 1.0}, {z, 1.0}});
  return m;
}

TEST(RecoveryLadder, TransientNanIsAbsorbedInPlace) {
  const Model m = ladder_lp();
  const SolveResult reference = SimplexSolver().solve(m);
  ASSERT_TRUE(reference.optimal());

  RevisedSimplexOptions opt;
  opt.inject_nan_at_pivot = 1;  // poison the first entering-column FTRAN
  const SolveResult res = RevisedSimplexSolver(opt).solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, reference.objective, 1e-9);
  EXPECT_LE(m.max_violation(res.x), 1e-9);
  EXPECT_GT(res.stats.recoveries(), 0);
}

TEST(RecoveryLadder, PersistentNanEscalatesToDenseCrossSolve) {
  const Model m = ladder_lp();
  const SolveResult reference = SimplexSolver().solve(m);
  ASSERT_TRUE(reference.optimal());

  RevisedSimplexOptions opt;
  opt.inject_nan_every_pivot = true;  // no sparse attempt can survive
  const SolveResult res = RevisedSimplexSolver(opt).solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, reference.objective, 1e-9);
  EXPECT_GT(res.stats.recovery_basis_resets, 0);
  EXPECT_GT(res.stats.recovery_dense_solves, 0);
}

TEST(RecoveryLadder, NanCostVectorIsRefusedUpFront) {
  Model m = ladder_lp();
  m.add_variable("poison", std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(model_input_finite(m));
  const SolveResult res = RevisedSimplexSolver().solve(m);
  EXPECT_EQ(res.status, SolveStatus::kNumericalError);
  EXPECT_TRUE(res.x.empty());
  // The ladder is not engaged: garbage input has no recoverable answer.
  EXPECT_EQ(res.stats.recoveries(), 0);

  const SolveResult dres = SimplexSolver().solve(m);
  EXPECT_EQ(dres.status, SolveStatus::kNumericalError);
}

TEST(RecoveryLadder, SingularWarmBasisFallsBackAndStillSolves) {
  // Two linearly dependent structural columns: a warm basis made of them
  // passes the shape checks but cannot factorize.
  Model m;
  const int x = m.add_variable("x", 1.0);
  const int y = m.add_variable("y", 1.0);
  m.add_constraint("c1", Sense::kLe, 4.0, {{x, 1.0}, {y, 1.0}});
  m.add_constraint("c2", Sense::kLe, 8.0, {{x, 2.0}, {y, 2.0}});
  const SolveResult reference = SimplexSolver().solve(m);
  ASSERT_TRUE(reference.optimal());

  WarmStartBasis warm;
  warm.m = 2;
  warm.total_cols = 4;  // 2 structural + 2 slack, no artificials
  warm.basis = {0, 1};  // the dependent pair — singular
  warm.at_upper.assign(4, 0);
  const SolveResult res = RevisedSimplexSolver().solve(m, warm);
  ASSERT_TRUE(res.optimal());
  EXPECT_FALSE(res.warm_started);
  EXPECT_NEAR(res.objective, reference.objective, 1e-9);
}

TEST(RecoveryLadder, PivotBudgetYieldsFeasibleAnytimeIterate) {
  const Model m = ladder_lp();
  const SolveResult reference = SimplexSolver().solve(m);
  ASSERT_TRUE(reference.optimal());

  RevisedSimplexOptions opt;
  opt.budget.max_pivots = 1;
  const SolveResult res = RevisedSimplexSolver(opt).solve(m);
  ASSERT_TRUE(res.status == SolveStatus::kOptimal ||
              res.status == SolveStatus::kDeadline);
  if (res.status == SolveStatus::kDeadline) {
    ASSERT_FALSE(res.x.empty());
    EXPECT_LE(m.max_violation(res.x), 1e-9);
    EXPECT_LE(res.objective, reference.objective + 1e-9);
  }
}

TEST(RecoveryLadder, UnlimitedBudgetIsNotLimited) {
  EXPECT_FALSE(SolveBudget{}.limited());
  SolveBudget pivots;
  pivots.max_pivots = 5;
  EXPECT_TRUE(pivots.limited());
  SolveBudget wall;
  wall.deadline_ms = 1.5;
  EXPECT_TRUE(wall.limited());
}

}  // namespace
}  // namespace mecar::lp
