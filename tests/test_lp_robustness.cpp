// Numerical-robustness property tests for both simplex engines: badly
// scaled rows/columns, degenerate ties, redundant rows, and larger sparse
// instances; the two engines must agree with each other and stay feasible.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/revised_simplex.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace mecar::lp {
namespace {

class ScalingSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ScalingSweep, EnginesAgreeUnderBadScaling) {
  util::Rng rng(GetParam());
  Model m;
  const int n = static_cast<int>(rng.uniform_int(4, 16));
  const int rows = static_cast<int>(rng.uniform_int(3, 10));
  for (int j = 0; j < n; ++j) {
    // Objective magnitudes across 6 decades.
    const double scale = std::pow(10.0, rng.uniform(-3.0, 3.0));
    m.add_variable("x" + std::to_string(j), rng.uniform(0.1, 1.0) * scale,
                   rng.uniform(0.5, 2.0) / scale);
  }
  for (int r = 0; r < rows; ++r) {
    const double row_scale = std::pow(10.0, rng.uniform(-2.0, 2.0));
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.6)) {
        terms.push_back({j, rng.uniform(0.1, 2.0) * row_scale});
      }
    }
    if (terms.empty()) terms.push_back({0, row_scale});
    m.add_constraint("r" + std::to_string(r), Sense::kLe,
                     rng.uniform(1.0, 5.0) * row_scale, terms);
  }
  const auto dense = SimplexSolver().solve(m);
  const auto revised = RevisedSimplexSolver().solve(m);
  ASSERT_TRUE(dense.optimal());
  ASSERT_TRUE(revised.optimal());
  const double tol = 1e-5 * std::max(1.0, std::abs(dense.objective));
  EXPECT_NEAR(dense.objective, revised.objective, tol);
  EXPECT_LE(m.max_violation(dense.x), 1e-5);
  EXPECT_LE(m.max_violation(revised.x), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalingSweep, ::testing::Range(100u, 120u));

TEST(Robustness, ManyRedundantRows) {
  Model m;
  const int x = m.add_variable("x", 1.0);
  const int y = m.add_variable("y", 1.0);
  for (int r = 0; r < 30; ++r) {
    // The same constraint thirty times (plus jitter in naming only).
    m.add_constraint("dup" + std::to_string(r), Sense::kLe, 10.0,
                     {{x, 1.0}, {y, 1.0}});
  }
  const SolveResult results[] = {SimplexSolver().solve(m),
                                 RevisedSimplexSolver().solve(m)};
  for (const SolveResult& result : results) {
    ASSERT_TRUE(result.optimal());
    EXPECT_NEAR(result.objective, 10.0, 1e-6);
  }
}

TEST(Robustness, HighlyDegenerateVertex) {
  // Many constraints through the same optimal vertex (2, 2).
  Model m;
  const int x = m.add_variable("x", 1.0);
  const int y = m.add_variable("y", 1.0);
  for (int k = 1; k <= 12; ++k) {
    m.add_constraint("c" + std::to_string(k), Sense::kLe,
                     2.0 * (1.0 + k) , {{x, 1.0}, {y, static_cast<double>(k)}});
  }
  m.add_constraint("cap_x", Sense::kLe, 2.0, {{x, 1.0}});
  m.add_constraint("cap_y", Sense::kLe, 2.0, {{y, 1.0}});
  const auto dense = SimplexSolver().solve(m);
  const auto revised = RevisedSimplexSolver().solve(m);
  ASSERT_TRUE(dense.optimal());
  ASSERT_TRUE(revised.optimal());
  EXPECT_NEAR(dense.objective, revised.objective, 1e-7);
}

TEST(Robustness, LargerSparseInstanceStaysConsistent) {
  util::Rng rng(7);
  Model m;
  const int n = 400;
  const int rows = 80;
  for (int j = 0; j < n; ++j) {
    m.add_variable("x" + std::to_string(j), rng.uniform(0.1, 1.0), 1.0);
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int hits = 0; hits < 6; ++hits) {
      terms.push_back({static_cast<int>(rng.uniform_int(0, n - 1)),
                       rng.uniform(0.2, 1.0)});
    }
    m.add_constraint("r" + std::to_string(r), Sense::kLe,
                     rng.uniform(1.0, 3.0), terms);
  }
  const auto dense = SimplexSolver().solve(m);
  const auto revised = RevisedSimplexSolver().solve(m);
  ASSERT_TRUE(dense.optimal());
  ASSERT_TRUE(revised.optimal());
  EXPECT_NEAR(dense.objective, revised.objective,
              1e-6 * std::max(1.0, dense.objective));
}

TEST(Robustness, TinyCoefficientsAreNotTreatedAsZero) {
  Model m;
  const int x = m.add_variable("x", 1.0);
  m.add_constraint("c", Sense::kLe, 1e-6, {{x, 1e-6}});
  const auto res = SimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.x[static_cast<std::size_t>(x)], 1.0, 1e-4);
}

}  // namespace
}  // namespace mecar::lp
