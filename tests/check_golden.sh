#!/usr/bin/env sh
# Bit-identity guard: every figure bench's default stdout must match the
# reference captured under tests/golden/. The only tolerated difference is
# Fig 3(c), which reports wall-clock solver runtimes; that block is
# filtered on both sides. Re-baseline (rerun each bench into its golden)
# only for intentional changes — e.g. the sparse-LU simplex engine lands
# on different optimal vertices of degenerate slot LPs, which shifts the
# randomized rounding downstream even though objectives are identical.
#
#   tests/check_golden.sh [BUILD_DIR]   (default: build)
set -u
build=${1:-build}
root=$(cd "$(dirname "$0")/.." && pwd)
fail=0

check() {
  name=$1
  filter=${2:-}
  if [ ! -x "$build/bench/$name" ]; then
    echo "MISSING BINARY: $build/bench/$name is absent or not executable" >&2
    echo "  (build it first: cmake --build $build --target $name)" >&2
    fail=1
    return
  fi
  if [ ! -f "$root/tests/golden/$name.txt" ]; then
    echo "MISSING GOLDEN: $root/tests/golden/$name.txt does not exist" >&2
    echo "  (capture it from a known-good build: $build/bench/$name > tests/golden/$name.txt)" >&2
    fail=1
    return
  fi
  out=$("$build/bench/$name" 2>/dev/null)
  ref=$(cat "$root/tests/golden/$name.txt")
  if [ -n "$filter" ]; then
    out=$(printf '%s\n' "$out" | awk "$filter")
    ref=$(printf '%s\n' "$ref" | awk "$filter")
  fi
  if [ "$out" = "$ref" ]; then
    echo "ok: $name"
  else
    echo "MISMATCH: $name" >&2
    tmp_ref=$(mktemp) && tmp_out=$(mktemp)
    printf '%s\n' "$ref" >"$tmp_ref"
    printf '%s\n' "$out" >"$tmp_out"
    diff "$tmp_ref" "$tmp_out" | head -20 >&2 || true
    rm -f "$tmp_ref" "$tmp_out"
    fail=1
  fi
}

check fig3_offline '/Fig 3\(c\)/{skip=1} /^headline/{skip=0} !skip'
check fig4_online
check fig5_stations
check fig6_rate
check regret_theorem3
check ablations
check quality_metrics
check resilience
exit $fail
