// Unit tests for the sparse LU basis factorization and its eta file,
// checked against the defining identities: ftran output x satisfies
// B x = a (B's k-th column is cols[basis[k]]), btran output y satisfies
// B^T y = c. Eta updates are checked against a dense basis with the
// replaced column.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/lu_factor.h"
#include "util/rng.h"

namespace mecar::lp {
namespace {

constexpr double kTol = 1e-9;

/// Dense m-vector of `cols[j]`.
std::vector<double> dense_col(const SparseCol& col, int m) {
  std::vector<double> out(static_cast<std::size_t>(m), 0.0);
  for (const Term& t : col.entries) {
    out[static_cast<std::size_t>(t.col)] += t.coeff;
  }
  return out;
}

/// B x for the basis matrix whose k-th column is cols[basis[k]].
std::vector<double> apply_basis(const std::vector<SparseCol>& cols,
                                const std::vector<int>& basis,
                                const std::vector<double>& x) {
  const int m = static_cast<int>(basis.size());
  std::vector<double> out(static_cast<std::size_t>(m), 0.0);
  for (int k = 0; k < m; ++k) {
    for (const Term& t : cols[static_cast<std::size_t>(basis[k])].entries) {
      out[static_cast<std::size_t>(t.col)] +=
          t.coeff * x[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

/// B^T y: component k is cols[basis[k]] . y.
std::vector<double> apply_basis_transpose(const std::vector<SparseCol>& cols,
                                          const std::vector<int>& basis,
                                          const std::vector<double>& y) {
  const int m = static_cast<int>(basis.size());
  std::vector<double> out(static_cast<std::size_t>(m), 0.0);
  for (int k = 0; k < m; ++k) {
    double dot = 0.0;
    for (const Term& t : cols[static_cast<std::size_t>(basis[k])].entries) {
      dot += t.coeff * y[static_cast<std::size_t>(t.col)];
    }
    out[static_cast<std::size_t>(k)] = dot;
  }
  return out;
}

void expect_near(const std::vector<double>& a, const std::vector<double>& b,
                 double tol, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << what << " component " << i;
  }
}

std::vector<SparseCol> random_cols(int m, int n, util::Rng& rng) {
  // Row indices are unique within a column (the engine's scatter contract).
  std::vector<SparseCol> cols(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    auto& entries = cols[static_cast<std::size_t>(j)].entries;
    for (int r = 0; r < m; ++r) {
      if (rng.bernoulli(0.4)) {
        entries.push_back(Term{r, rng.uniform(-2.0, 2.0)});
      }
    }
    // Guarantee a strong entry somewhere so random bases are usually
    // nonsingular.
    const int strong = static_cast<int>(rng.uniform_int(0, m - 1));
    const double v = rng.bernoulli(0.5) ? 2.5 : -2.5;
    bool found = false;
    for (Term& t : entries) {
      if (t.col == strong) {
        t.coeff = v;
        found = true;
        break;
      }
    }
    if (!found) entries.push_back(Term{strong, v});
  }
  return cols;
}

TEST(BasisLu, FactorizesAndSolvesKnownSystem) {
  // B = [[2, 1, 0], [0, 3, 1], [1, 0, 2]] column by column.
  std::vector<SparseCol> cols(3);
  cols[0].entries = {{0, 2.0}, {2, 1.0}};
  cols[1].entries = {{0, 1.0}, {1, 3.0}};
  cols[2].entries = {{1, 1.0}, {2, 2.0}};
  const std::vector<int> basis{0, 1, 2};
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(cols, basis, 1e-12));
  EXPECT_EQ(lu.m(), 3);
  EXPECT_EQ(lu.eta_len(), 0);
  EXPECT_GT(lu.factor_nnz(), 0);

  std::vector<double> x{5.0, 7.0, 4.0};  // row-indexed rhs a
  const std::vector<double> a = x;
  lu.ftran(x);
  expect_near(apply_basis(cols, basis, x), a, kTol, "ftran");

  std::vector<double> y{1.0, -2.0, 0.5};  // position-indexed costs c
  const std::vector<double> c = y;
  lu.btran(y);
  expect_near(apply_basis_transpose(cols, basis, y), c, kTol, "btran");
}

TEST(BasisLu, PermutedBasisOrderStillSolves) {
  // Same matrix, scrambled basis order: the factorization must handle a
  // column order that needs row pivoting.
  std::vector<SparseCol> cols(3);
  cols[0].entries = {{1, 1.0}};            // e_1-ish
  cols[1].entries = {{0, 4.0}, {1, 1.0}};  // dense-ish
  cols[2].entries = {{2, -3.0}, {0, 0.5}};
  const std::vector<int> basis{2, 0, 1};
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(cols, basis, 1e-12));
  std::vector<double> x{1.0, 2.0, 3.0};
  const auto a = x;
  lu.ftran(x);
  expect_near(apply_basis(cols, basis, x), a, kTol, "permuted ftran");
}

TEST(BasisLu, DetectsSingularBasis) {
  std::vector<SparseCol> cols(2);
  cols[0].entries = {{0, 1.0}, {1, 2.0}};
  cols[1].entries = {{0, 2.0}, {1, 4.0}};  // linearly dependent
  BasisLu lu;
  EXPECT_FALSE(lu.factorize(cols, {0, 1}, 1e-12));
}

TEST(BasisLu, EtaUpdateMatchesRefactorizedBasis) {
  util::Rng rng(5);
  const int m = 8;
  auto cols = random_cols(m, 16, rng);
  std::vector<int> basis{0, 1, 2, 3, 4, 5, 6, 7};
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(cols, basis, 1e-12));

  // Pivot column 12 into position 3: w = B^{-1} a_12 via ftran.
  const int entering = 12;
  const int leave = 3;
  std::vector<double> w = dense_col(cols[entering], m);
  lu.ftran(w);
  ASSERT_GT(std::abs(w[leave]), 1e-8) << "test basis made a bad pivot";
  ASSERT_TRUE(lu.push_eta(w, leave, 1e-8));
  EXPECT_EQ(lu.eta_len(), 1);
  basis[leave] = entering;

  // Both solves must now answer for the updated basis.
  std::vector<double> x{1.0, -1.0, 0.5, 2.0, 0.0, 3.0, -0.25, 1.5};
  const auto a = x;
  lu.ftran(x);
  expect_near(apply_basis(cols, basis, x), a, 1e-8, "eta ftran");

  std::vector<double> y{0.5, 1.0, 0.0, -2.0, 1.0, 0.0, 2.0, -1.0};
  const auto c = y;
  lu.btran(y);
  expect_near(apply_basis_transpose(cols, basis, y), c, 1e-8, "eta btran");

  // A refactorization of the updated basis agrees with the eta file.
  BasisLu fresh;
  ASSERT_TRUE(fresh.factorize(cols, basis, 1e-12));
  std::vector<double> x2 = a;
  fresh.ftran(x2);
  expect_near(x, x2, 1e-8, "eta vs refactorized");
}

TEST(BasisLu, RejectsUnstableEtaPivot) {
  std::vector<SparseCol> cols(2);
  cols[0].entries = {{0, 1.0}};
  cols[1].entries = {{1, 1.0}};
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(cols, {0, 1}, 1e-12));
  std::vector<double> w{1.0, 1e-12};  // pivot entry below the threshold
  EXPECT_FALSE(lu.push_eta(w, 1, 1e-8));
  EXPECT_EQ(lu.eta_len(), 0);  // file untouched on rejection
}

TEST(BasisLu, RandomizedFtranBtranSweep) {
  for (unsigned seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    const int m = static_cast<int>(rng.uniform_int(2, 12));
    auto cols = random_cols(m, 2 * m, rng);
    std::vector<int> basis;
    for (int k = 0; k < m; ++k) basis.push_back(k);
    BasisLu lu;
    if (!lu.factorize(cols, basis, 1e-10)) continue;  // singular draw

    std::vector<double> x, c;
    for (int i = 0; i < m; ++i) {
      x.push_back(rng.uniform(-3.0, 3.0));
      c.push_back(rng.uniform(-3.0, 3.0));
    }
    const auto a = x;
    lu.ftran(x);
    expect_near(apply_basis(cols, basis, x), a, 1e-7, "sweep ftran");
    auto y = c;
    lu.btran(y);
    expect_near(apply_basis_transpose(cols, basis, y), c, 1e-7,
                "sweep btran");

    // Chain a few eta updates and keep checking both solves.
    for (int upd = 0; upd < 3; ++upd) {
      const int entering = static_cast<int>(rng.uniform_int(m, 2 * m - 1));
      std::vector<double> w = dense_col(cols[static_cast<std::size_t>(
                                            entering)], m);
      lu.ftran(w);
      const int leave = static_cast<int>(rng.uniform_int(0, m - 1));
      if (std::abs(w[static_cast<std::size_t>(leave)]) < 1e-6) continue;
      ASSERT_TRUE(lu.push_eta(w, leave, 1e-8));
      basis[static_cast<std::size_t>(leave)] = entering;

      auto xx = a;
      lu.ftran(xx);
      expect_near(apply_basis(cols, basis, xx), a, 1e-6, "sweep eta ftran");
      auto yy = c;
      lu.btran(yy);
      expect_near(apply_basis_transpose(cols, basis, yy), c, 1e-6,
                  "sweep eta btran");
    }
  }
}

}  // namespace
}  // namespace mecar::lp
