// Tests for the parallel execution substrate: result ordering, exception
// propagation, nested regions, and the golden guarantee the bench sweeps
// rely on — a pooled sweep over seeded trials is bit-identical to the
// serial sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "bench/bench_util.h"
#include "sim/dynamic_rr.h"
#include "sim/online_sim.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace mecar::util {
namespace {

TEST(ThreadPool, ResolvesAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  EXPECT_GE(default_thread_count(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndSingleElementRegions) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelMapStoresResultsByIndex) {
  ThreadPool pool(4);
  const auto out = pool.parallel_map(
      100, [](std::size_t i) { return static_cast<double>(i) * 3.0; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 3.0);
  }
}

TEST(ThreadPool, SeededTrialsMatchSerialElementByElement) {
  // The determinism contract of bench_util::sweep_seeds: each trial derives
  // all randomness from its index, so the pooled map equals the serial loop
  // exactly (same doubles).
  auto trial = [](std::size_t i) {
    Rng rng(static_cast<unsigned>(7 + i * 1000));
    double acc = 0.0;
    for (int k = 0; k < 1000; ++k) acc += rng.uniform(0.0, 1.0) * 1e-3;
    return acc;
  };
  std::vector<double> serial;
  for (std::size_t i = 0; i < 16; ++i) serial.push_back(trial(i));
  ThreadPool pool(4);
  const auto parallel = pool.parallel_map(16, trial);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "trial " << i;
  }
}

TEST(ThreadPool, RethrowsFirstTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(128,
                                 [](std::size_t i) {
                                   if (i == 17) {
                                     throw std::runtime_error("task failed");
                                   }
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed region.
  const auto out =
      pool.parallel_map(8, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(out.back(), 7);
}

TEST(ThreadPool, NestedRegionsRunInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    // A nested region on the default pool must not wait on the workers of
    // an already-busy pool; it runs inline on the calling task's thread.
    parallel_for(8, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(DefaultPool, FreeFunctionsUseTheSharedPool) {
  const auto out =
      parallel_map(32, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 32u);
  EXPECT_EQ(out[5], 25);
}

// Golden test for the figure sweeps: a miniature fig4 trial (DynamicRR on
// an online instance) swept serially and through the pool must produce the
// exact same rewards. This is the end-to-end version of the determinism
// contract — it exercises the full simulator, LP warm starts included.
double fig4_mini_trial(unsigned seed) {
  benchx::InstanceConfig config;
  config.num_requests = 40;
  config.horizon_slots = 60;
  const auto inst = benchx::make_instance(seed, config);
  sim::OnlineParams params;
  params.horizon_slots = 60;
  sim::DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{},
                              sim::DynamicRrParams{}, util::Rng(seed + 1));
  sim::OnlineSimulator simulator(inst.topo, inst.requests, inst.realized,
                                 params);
  return simulator.run(policy).total_reward;
}

TEST(GoldenSweep, Fig4MiniParallelMatchesSerialBitForBit) {
  const auto seeds = benchx::bench_seeds(4);
  std::vector<double> serial;
  for (unsigned seed : seeds) serial.push_back(fig4_mini_trial(seed));

  ThreadPool pool(4);
  const auto parallel = pool.parallel_map(
      seeds.size(), [&](std::size_t i) { return fig4_mini_trial(seeds[i]); });

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "seed " << seeds[i];
  }
}

}  // namespace
}  // namespace mecar::util
