// Failure-injection tests: station outages displace resident streams;
// policies must re-place them; capacity of failed stations is unusable;
// service degrades gracefully rather than corrupting state.
#include <gtest/gtest.h>

#include "mec/workload.h"
#include "sim/dynamic_rr.h"
#include "sim/online_baselines.h"
#include "sim/online_sim.h"
#include "util/rng.h"

namespace mecar::sim {
namespace {

mec::Topology two_stations() {
  std::vector<mec::BaseStation> stations{
      {0, 2000.0, 1.0, 0.0, 0.0},
      {1, 2000.0, 1.0, 0.2, 0.0},
  };
  std::vector<mec::Link> links{{0, 1, 2.0}};
  return mec::Topology(std::move(stations), std::move(links));
}

mec::ARRequest stream(int id, double rate, int arrival, int duration) {
  mec::ARRequest req;
  req.id = id;
  req.home_station = 0;
  req.tasks = mec::ar_pipeline(3);
  req.demand = mec::RateRewardDist({{rate, 1.0, 500.0}});
  req.latency_budget_ms = 200.0;
  req.arrival_slot = arrival;
  req.duration_slots = duration;
  return req;
}

/// Schedules everything at station 0; re-places displaced streams at
/// station 1.
class Station0Policy final : public OnlinePolicy {
 public:
  SlotDecision decide(const SlotView& view) override {
    SlotDecision d;
    for (int j : view.pending) {
      const RequestState& st = (*view.states)[static_cast<std::size_t>(j)];
      if (st.phase == Phase::kServed && st.station < 0) {
        d.active.push_back({j, 1});  // failover target
      } else if (st.phase == Phase::kServed) {
        d.active.push_back({j, st.station});
      } else {
        d.active.push_back({j, 0});
      }
    }
    return d;
  }
  std::string name() const override { return "Station0"; }
};

TEST(FailureInjection, OutageDisplacesAndFailoverCompletes) {
  const mec::Topology topo = two_stations();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 6)};
  OnlineParams params;
  params.horizon_slots = 30;
  params.outages = {{0, 2, 10}};  // station 0 down in slots [2, 10)
  OnlineSimulator sim(topo, requests, {0}, params);
  Station0Policy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.displaced, 1);
  EXPECT_EQ(m.completed, 1);  // finished at station 1
  EXPECT_DOUBLE_EQ(m.total_reward, 500.0);
}

TEST(FailureInjection, PlacementOntoFailedStationIsRefused) {
  const mec::Topology topo = two_stations();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 2)};
  OnlineParams params;
  params.horizon_slots = 10;
  params.outages = {{0, 0, 10}};  // station 0 down the whole time

  class InsistPolicy final : public OnlinePolicy {
   public:
    SlotDecision decide(const SlotView& view) override {
      SlotDecision d;
      for (int j : view.pending) d.active.push_back({j, 0});
      return d;
    }
    std::string name() const override { return "Insist"; }
  };

  OnlineSimulator sim(topo, requests, {0}, params);
  InsistPolicy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.completed, 0);
  EXPECT_EQ(m.dropped, 1);  // never got service -> starved
}

TEST(FailureInjection, NoOutageNoDisplacement) {
  const mec::Topology topo = two_stations();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 4)};
  OnlineParams params;
  params.horizon_slots = 20;
  OnlineSimulator sim(topo, requests, {0}, params);
  Station0Policy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.displaced, 0);
  EXPECT_EQ(m.completed, 1);
}

TEST(FailureInjection, DisplacementPreservesProgress) {
  // 6-slot session, 3 slots done at station 0, outage, resumes at 1:
  // completes exactly 3 slots after failover (no work lost).
  const mec::Topology topo = two_stations();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 6)};
  OnlineParams params;
  params.horizon_slots = 30;
  params.outages = {{0, 3, 30}};
  OnlineSimulator sim(topo, requests, {0}, params);
  Station0Policy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.completed, 1);
  // Slots 0-2 run at station 0; the stream is displaced at slot 3 and
  // re-placed the same slot, so slots 3-5 run at station 1 and the session
  // completes at slot 5 — failover costs no progress and no extra slots.
  for (std::size_t t = 0; t < m.per_slot_reward.size(); ++t) {
    if (m.per_slot_reward[t] > 0.0) {
      EXPECT_EQ(t, 5u);
    }
  }
}

TEST(FailureInjection, OverlappingOutagesDisplaceOnlyOnce) {
  // Two overlapping windows keep station 0 down continuously over [2, 15);
  // the resident stream is displaced exactly once, not once per event.
  const mec::Topology topo = two_stations();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 6)};
  OnlineParams params;
  params.horizon_slots = 30;
  params.outages = {{0, 2, 10}, {0, 5, 15}};
  OnlineSimulator sim(topo, requests, {0}, params);
  Station0Policy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.displaced, 1);
  EXPECT_EQ(m.resilience.displaced_outage, 1);
  EXPECT_EQ(m.completed, 1);
  EXPECT_DOUBLE_EQ(m.total_reward, 500.0);
}

TEST(FailureInjection, ZeroLengthOutageWindowIsANoop) {
  // An empty window [5, 5) never activates: the run matches the fault-free
  // run slot for slot even though the chaos path is engaged.
  const mec::Topology topo = two_stations();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 4)};
  const auto run = [&](std::vector<StationOutage> outages) {
    OnlineParams params;
    params.horizon_slots = 20;
    params.outages = std::move(outages);
    OnlineSimulator sim(topo, requests, {0}, params);
    Station0Policy policy;
    return sim.run(policy);
  };
  const auto healthy = run({});
  const auto noop = run({{0, 5, 5}});
  EXPECT_EQ(noop.displaced, 0);
  EXPECT_EQ(noop.completed, 1);
  EXPECT_EQ(noop.resilience.fault_epochs, 0);
  EXPECT_EQ(noop.per_slot_reward, healthy.per_slot_reward);
}

TEST(FailureInjection, OutageFromSlotZeroDelaysButDoesNotDisplace) {
  // The station is already down when the request arrives: placements are
  // refused until slot 3, then it is placed normally — nothing was ever
  // resident, so nothing is displaced and accounting stays consistent.
  const mec::Topology topo = two_stations();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 4)};
  OnlineParams params;
  params.horizon_slots = 20;
  params.outages = {{0, 0, 3}};
  OnlineSimulator sim(topo, requests, {0}, params);
  Station0Policy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.arrived, 1);
  EXPECT_EQ(m.displaced, 0);
  EXPECT_EQ(m.completed, 1);
  EXPECT_EQ(m.completed + m.dropped + m.unfinished, m.arrived);
  // Waiting through the outage is charged as experienced latency.
  EXPECT_GE(m.avg_latency_ms, 3 * params.slot_ms);
}

TEST(FailureInjection, HomeStationOutageDoesNotDisplaceWaitingRequest) {
  // Only RESIDENT streams are displaced. A waiting request whose home
  // station dies simply gets placed elsewhere (home is the radio
  // attachment, not a compute placement).
  const mec::Topology topo = two_stations();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 4)};
  OnlineParams params;
  params.horizon_slots = 20;
  params.outages = {{0, 0, 20}};  // home station down the whole horizon

  class RemotePolicy final : public OnlinePolicy {
   public:
    SlotDecision decide(const SlotView& view) override {
      SlotDecision d;
      for (int j : view.pending) {
        const RequestState& st = (*view.states)[static_cast<std::size_t>(j)];
        d.active.push_back({j, st.phase == Phase::kServed ? st.station : 1});
      }
      return d;
    }
    std::string name() const override { return "Remote"; }
  };

  OnlineSimulator sim(topo, requests, {0}, params);
  RemotePolicy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.displaced, 0);
  EXPECT_EQ(m.completed, 1);
  EXPECT_DOUBLE_EQ(m.total_reward, 500.0);
}

// End-to-end: every real policy survives a mid-horizon outage of the two
// hottest stations without crashing, keeps all invariants, and completes a
// sensible number of sessions.
class OutageSweep : public ::testing::TestWithParam<int> {};

TEST_P(OutageSweep, PoliciesSurviveOutages) {
  util::Rng rng(31);
  mec::TopologyParams tparams;
  tparams.num_stations = 12;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 150;
  wparams.horizon_slots = 300;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);
  OnlineParams params;
  params.horizon_slots = 300;
  params.outages = {{0, 100, 200}, {1, 120, 180}};

  std::unique_ptr<OnlinePolicy> policy;
  switch (GetParam()) {
    case 0:
      policy = std::make_unique<DynamicRrPolicy>(
          topo, core::AlgorithmParams{}, DynamicRrParams{}, util::Rng(32));
      break;
    case 1:
      policy =
          std::make_unique<GreedyOnlinePolicy>(topo, core::AlgorithmParams{});
      break;
    case 2:
      policy =
          std::make_unique<OcorpOnlinePolicy>(topo, core::AlgorithmParams{});
      break;
    default:
      policy =
          std::make_unique<HeuKktOnlinePolicy>(topo, core::AlgorithmParams{});
      break;
  }
  OnlineSimulator sim(topo, requests, realized, params);
  const auto m = sim.run(*policy);
  EXPECT_EQ(m.completed + m.dropped + m.unfinished, m.arrived)
      << policy->name();
  EXPECT_GT(m.completed, 0) << policy->name();
  EXPECT_LE(m.avg_latency_ms, 200.0) << policy->name();
}

INSTANTIATE_TEST_SUITE_P(Policies, OutageSweep, ::testing::Range(0, 4));

TEST(GracefulDegradation, LpIterationLimitFallsBackToGreedy) {
  // A one-pivot budget makes every nontrivial slot LP exit with
  // kIterationLimit; the policy must place batches through the greedy
  // failover instead of dropping them, and must account for every
  // fallback.
  util::Rng rng(41);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 120;
  wparams.horizon_slots = 200;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);
  OnlineParams params;
  params.horizon_slots = 200;

  DynamicRrParams rr;
  rr.lp_max_iterations = 1;
  DynamicRrPolicy policy(topo, core::AlgorithmParams{}, rr, util::Rng(42));
  OnlineSimulator sim(topo, requests, realized, params);
  const auto m = sim.run(policy);

  const DegradationStats& deg = policy.degradation_stats();
  EXPECT_GT(deg.lp_solves, 0);
  EXPECT_GT(deg.lp_fallbacks, 0)
      << "a 1-pivot budget never tripped the iteration limit";
  // Service continues: the failover path still places requests.
  EXPECT_GT(m.completed, 0);
  EXPECT_EQ(m.completed + m.dropped + m.unfinished, m.arrived);
}

TEST(FailureInjection, OutageReducesButDoesNotZeroReward) {
  util::Rng rng(37);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 200;
  wparams.horizon_slots = 400;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);

  auto run = [&](std::vector<StationOutage> outages) {
    OnlineParams params;
    params.horizon_slots = 400;
    params.outages = std::move(outages);
    DynamicRrPolicy policy(topo, core::AlgorithmParams{}, DynamicRrParams{},
                           util::Rng(38));
    OnlineSimulator sim(topo, requests, realized, params);
    return sim.run(policy).total_reward;
  };

  const double healthy = run({});
  // Take out a third of the network for half the horizon.
  std::vector<StationOutage> outages;
  for (int bs = 0; bs < topo.num_stations() / 3; ++bs) {
    outages.push_back({bs, 100, 300});
  }
  const double degraded = run(outages);
  EXPECT_LT(degraded, healthy);
  EXPECT_GT(degraded, 0.3 * healthy);  // graceful degradation
}

}  // namespace
}  // namespace mecar::sim
