// Hand-computed verification of the slot LP's matrix: exact coefficients
// of constraints (9), (10) and the LP-PT truncation (23), ER_jil values,
// and the latency filtering of (11).
#include <gtest/gtest.h>

#include <map>

#include "core/slot_lp.h"
#include "mec/request.h"

namespace mecar::core {
namespace {

/// One isolated station, capacity 2600 MHz -> 2 slots of 1000 MHz.
mec::Topology one_station() {
  std::vector<mec::BaseStation> stations{{0, 2600.0, 1.0, 0.0, 0.0}};
  return mec::Topology(std::move(stations), {});
}

/// Rate 30 w.p. 0.75 (reward 300), rate 90 w.p. 0.25 (reward 900).
mec::ARRequest two_level_request(int id) {
  mec::ARRequest req;
  req.id = id;
  req.home_station = 0;
  req.tasks = mec::ar_pipeline(3);
  req.demand = mec::RateRewardDist({{30.0, 0.75, 300.0}, {90.0, 0.25, 900.0}});
  req.latency_budget_ms = 200.0;
  return req;
}

/// Finds the row whose name matches; -1 if absent.
int find_row(const lp::Model& model, const std::string& name) {
  for (int r = 0; r < model.num_constraints(); ++r) {
    if (model.row(r).name == name) return r;
  }
  return -1;
}

TEST(SlotLpMatrix, ObjectiveIsErJil) {
  const mec::Topology topo = one_station();
  const std::vector<mec::ARRequest> requests{two_level_request(0)};
  const auto inst = build_slot_lp(topo, requests, AlgorithmParams{});
  // Slot 0: remaining 2600 MHz -> cap 130 MB/s: both levels fit,
  //   ER = 0.75*300 + 0.25*900 = 450.
  // Slot 1: remaining 1600 -> cap 80: only rate 30 fits, ER = 225.
  ASSERT_EQ(inst.vars.size(), 2u);
  std::map<int, double> er_by_slot;
  for (std::size_t c = 0; c < inst.vars.size(); ++c) {
    er_by_slot[inst.vars[c].slot] =
        inst.model.variable(static_cast<int>(c)).objective;
  }
  EXPECT_NEAR(er_by_slot.at(0), 450.0, 1e-12);
  EXPECT_NEAR(er_by_slot.at(1), 225.0, 1e-12);
}

TEST(SlotLpMatrix, Constraint10CoefficientsAreTruncatedExpectations) {
  const mec::Topology topo = one_station();
  const std::vector<mec::ARRequest> requests{two_level_request(0)};
  const auto inst = build_slot_lp(topo, requests, AlgorithmParams{});
  // Row "slots_0_1": sum over columns with slot < 1 of
  //   E[min(rho, 1*1000/20 = 50)] * y  <=  2 * 50.
  // E[min(rho, 50)] = 0.75*30 + 0.25*50 = 35.
  const int r1 = find_row(inst.model, "slots_0_1");
  ASSERT_GE(r1, 0);
  const auto& row1 = inst.model.row(r1);
  EXPECT_DOUBLE_EQ(row1.rhs, 100.0);
  ASSERT_EQ(row1.terms.size(), 1u);  // only the slot-0 column
  EXPECT_EQ(inst.vars[static_cast<std::size_t>(row1.terms[0].col)].slot, 0);
  EXPECT_NEAR(row1.terms[0].coeff, 35.0, 1e-12);

  // Row "slots_0_2": cap 100 MB/s -> E[min(rho,100)] = E[rho] = 45;
  // both slot-0 and slot-1 columns appear; rhs = 2*100.
  const int r2 = find_row(inst.model, "slots_0_2");
  ASSERT_GE(r2, 0);
  const auto& row2 = inst.model.row(r2);
  EXPECT_DOUBLE_EQ(row2.rhs, 200.0);
  ASSERT_EQ(row2.terms.size(), 2u);
  for (const auto& term : row2.terms) {
    EXPECT_NEAR(term.coeff, 45.0, 1e-12);
  }
}

TEST(SlotLpMatrix, Constraint23AddsShareCapTruncation) {
  const mec::Topology topo = one_station();
  const std::vector<mec::ARRequest> requests{two_level_request(0)};
  SlotLpOptions options;
  options.share_cap_mhz = 500.0;  // -> 25 MB/s share cap
  const auto inst = build_slot_lp(topo, requests, AlgorithmParams{}, options);
  // All truncations now cap at min(25, l*50): for l=1, cap 25:
  // E[min(rho, 25)] = 25 (both levels exceed 25).
  const int r1 = find_row(inst.model, "slots_0_1");
  ASSERT_GE(r1, 0);
  EXPECT_NEAR(inst.model.row(r1).terms[0].coeff, 25.0, 1e-12);
  // rhs stays 2 * l * C_l / C_unit (the paper keeps the right side).
  EXPECT_DOUBLE_EQ(inst.model.row(r1).rhs, 100.0);
}

TEST(SlotLpMatrix, Constraint9IsPerRequest) {
  const mec::Topology topo = one_station();
  std::vector<mec::ARRequest> requests{two_level_request(0),
                                       two_level_request(1)};
  const auto inst = build_slot_lp(topo, requests, AlgorithmParams{});
  for (int j = 0; j < 2; ++j) {
    const int r = find_row(inst.model, "assign_" + std::to_string(j));
    ASSERT_GE(r, 0);
    const auto& row = inst.model.row(r);
    EXPECT_EQ(row.sense, lp::Sense::kLe);
    EXPECT_DOUBLE_EQ(row.rhs, 1.0);
    EXPECT_EQ(row.terms.size(),
              inst.request_columns[static_cast<std::size_t>(j)].size());
    for (const auto& term : row.terms) {
      EXPECT_DOUBLE_EQ(term.coeff, 1.0);
    }
  }
}

TEST(SlotLpMatrix, LatencyFilterDropsAllColumns) {
  const mec::Topology topo = one_station();
  std::vector<mec::ARRequest> requests{two_level_request(0)};
  requests[0].latency_budget_ms = 1.0;  // processing alone costs 2.4 ms
  const auto inst = build_slot_lp(topo, requests, AlgorithmParams{});
  EXPECT_EQ(inst.model.num_variables(), 0);
  EXPECT_TRUE(inst.request_columns[0].empty());
}

TEST(SlotLpMatrix, IlpRmUsesExpectedDemandRows) {
  const mec::Topology topo = one_station();
  std::vector<mec::ARRequest> requests{two_level_request(0),
                                       two_level_request(1)};
  const auto inst = build_ilp_rm(topo, requests, AlgorithmParams{});
  // One binary per (request, station); objective = full expected reward
  // (both levels fit the 130 MB/s whole-station cap).
  ASSERT_EQ(inst.model.num_variables(), 2);
  for (int c = 0; c < 2; ++c) {
    EXPECT_TRUE(inst.model.variable(c).integral);
    EXPECT_NEAR(inst.model.variable(c).objective, 450.0, 1e-12);
  }
  const int cap = find_row(inst.model, "cap_0");
  ASSERT_GE(cap, 0);
  const auto& row = inst.model.row(cap);
  EXPECT_DOUBLE_EQ(row.rhs, 2600.0);
  for (const auto& term : row.terms) {
    // E[rho] * C_unit = 45 * 20 = 900 MHz.
    EXPECT_NEAR(term.coeff, 900.0, 1e-12);
  }
}

}  // namespace
}  // namespace mecar::core
