// Chaos-engine tests: fault plans project onto slots correctly, the
// topology overlay rebuilds only at fault-epoch boundaries, scripted link
// faults displace and re-place streams end to end, drops are attributed to
// their cause, and chaos generation is seed-deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "mec/topology_overlay.h"
#include "mec/workload.h"
#include "sim/fault_plan.h"
#include "sim/online_sim.h"
#include "util/rng.h"

namespace mecar::sim {
namespace {

mec::Topology two_stations() {
  std::vector<mec::BaseStation> stations{
      {0, 2000.0, 1.0, 0.0, 0.0},
      {1, 2000.0, 1.0, 0.2, 0.0},
  };
  std::vector<mec::Link> links{{0, 1, 2.0}};
  return mec::Topology(std::move(stations), std::move(links));
}

mec::Topology one_station(double capacity_mhz) {
  std::vector<mec::BaseStation> stations{{0, capacity_mhz, 1.0, 0.0, 0.0}};
  return mec::Topology(std::move(stations), {});
}

mec::ARRequest stream(int id, double rate, int arrival, int duration) {
  mec::ARRequest req;
  req.id = id;
  req.home_station = 0;
  req.tasks = mec::ar_pipeline(3);
  req.demand = mec::RateRewardDist({{rate, 1.0, 500.0}});
  req.latency_budget_ms = 200.0;
  req.arrival_slot = arrival;
  req.duration_slots = duration;
  return req;
}

// ---------------------------------------------------------------------------
// TopologyOverlay

TEST(TopologyOverlay, IdentityPerturbationNeverRebuilds) {
  const mec::Topology topo = two_stations();
  mec::TopologyOverlay overlay(topo);
  const mec::TopologyPerturbation none;
  EXPECT_TRUE(none.identity());
  EXPECT_FALSE(overlay.apply(none));
  EXPECT_FALSE(overlay.reset());
  EXPECT_EQ(overlay.epochs(), 0);
  EXPECT_DOUBLE_EQ(overlay.effective().transmission_delay_ms(0, 1), 2.0);
}

TEST(TopologyOverlay, BrownoutScalesCapacityAndRepeatIsFree) {
  const mec::Topology topo = two_stations();
  mec::TopologyOverlay overlay(topo);
  // Bind the stable reference BEFORE any fault: every epoch must be
  // observable through it (this is the contract the simulator relies on).
  const mec::Topology& eff = overlay.effective();

  mec::TopologyPerturbation pert;
  pert.capacity_scale = {1.0, 0.5};
  EXPECT_TRUE(overlay.apply(pert));
  EXPECT_EQ(overlay.epochs(), 1);
  EXPECT_DOUBLE_EQ(eff.station(0).capacity_mhz, 2000.0);
  EXPECT_DOUBLE_EQ(eff.station(1).capacity_mhz, 1000.0);

  // Same perturbation again: same epoch, no rebuild.
  EXPECT_FALSE(overlay.apply(pert));
  EXPECT_EQ(overlay.epochs(), 1);

  // Return to healthy is itself an epoch.
  EXPECT_TRUE(overlay.reset());
  EXPECT_EQ(overlay.epochs(), 2);
  EXPECT_DOUBLE_EQ(eff.station(1).capacity_mhz, 2000.0);
}

TEST(TopologyOverlay, LinkOutageDisconnectsButKeepsLinkIndex) {
  const mec::Topology topo = two_stations();
  mec::TopologyOverlay overlay(topo);
  mec::TopologyPerturbation pert;
  pert.link_down = {1};
  EXPECT_TRUE(overlay.apply(pert));
  const mec::Topology& eff = overlay.effective();
  EXPECT_FALSE(std::isfinite(eff.transmission_delay_ms(0, 1)));
  // The cut link keeps its index (modelled as an infinite-delay edge), so
  // base link ids remain valid across epochs.
  ASSERT_EQ(eff.links().size(), 1u);
  EXPECT_FALSE(std::isfinite(eff.links()[0].delay_ms));
  // The base topology is untouched.
  EXPECT_DOUBLE_EQ(overlay.base().transmission_delay_ms(0, 1), 2.0);
}

TEST(TopologyOverlay, LinkDegradationScalesDelay) {
  const mec::Topology topo = two_stations();
  mec::TopologyOverlay overlay(topo);
  mec::TopologyPerturbation pert;
  pert.link_delay_scale = {3.0};
  EXPECT_TRUE(overlay.apply(pert));
  EXPECT_DOUBLE_EQ(overlay.effective().transmission_delay_ms(0, 1), 6.0);
}

TEST(TopologyOverlay, RejectsMalformedPerturbations) {
  const mec::Topology topo = two_stations();
  mec::TopologyOverlay overlay(topo);
  mec::TopologyPerturbation wrong_size;
  wrong_size.capacity_scale = {0.5};  // 1 entry, 2 stations
  EXPECT_THROW(overlay.apply(wrong_size), std::invalid_argument);
  mec::TopologyPerturbation negative;
  negative.capacity_scale = {-0.1, 1.0};
  EXPECT_THROW(overlay.apply(negative), std::invalid_argument);
  mec::TopologyPerturbation shrink;
  shrink.link_delay_scale = {0.5};  // delay scales must be >= 1
  EXPECT_THROW(overlay.apply(shrink), std::invalid_argument);
  EXPECT_EQ(overlay.epochs(), 0);  // failed applies change nothing
}

// ---------------------------------------------------------------------------
// FaultPlan::snapshot

TEST(FaultPlan, WindowsAreHalfOpen) {
  const mec::Topology topo = two_stations();
  FaultPlan plan;
  plan.station_outages = {{0, 2, 5}};
  EXPECT_EQ(plan.snapshot(topo, 1).station_up[0], 1);
  EXPECT_FALSE(plan.snapshot(topo, 1).any_fault);
  EXPECT_EQ(plan.snapshot(topo, 2).station_up[0], 0);
  EXPECT_TRUE(plan.snapshot(topo, 2).any_fault);
  EXPECT_EQ(plan.snapshot(topo, 4).station_up[0], 0);
  EXPECT_EQ(plan.snapshot(topo, 5).station_up[0], 1);  // until is exclusive
}

TEST(FaultPlan, OverlappingBrownoutsCompoundMultiplicatively) {
  const mec::Topology topo = two_stations();
  FaultPlan plan;
  plan.brownouts = {{0, 0, 10, 0.5}, {0, 5, 10, 0.5}};
  const FaultSnapshot a = plan.snapshot(topo, 2);
  ASSERT_EQ(a.perturbation.capacity_scale.size(), 2u);
  EXPECT_DOUBLE_EQ(a.perturbation.capacity_scale[0], 0.5);
  const FaultSnapshot b = plan.snapshot(topo, 7);
  ASSERT_EQ(b.perturbation.capacity_scale.size(), 2u);
  EXPECT_DOUBLE_EQ(b.perturbation.capacity_scale[0], 0.25);
  EXPECT_EQ(b.station_up[0], 1);  // browned out, not dead
}

TEST(FaultPlan, ZeroFactorBrownoutIsAnOutage) {
  const mec::Topology topo = two_stations();
  FaultPlan plan;
  plan.brownouts = {{0, 0, 10, 0.0}};
  const FaultSnapshot snap = plan.snapshot(topo, 3);
  EXPECT_EQ(snap.station_up[0], 0);
  // The overlay never sees a zero scale — the availability map handles it,
  // so the effective topology stays constructible.
  EXPECT_TRUE(snap.perturbation.capacity_scale.empty());
  EXPECT_TRUE(snap.any_fault);
}

TEST(FaultPlan, ValidateRejectsBadEvents) {
  const mec::Topology topo = two_stations();
  {
    FaultPlan plan;
    plan.station_outages = {{9, 0, 5}};  // no station 9
    EXPECT_THROW(plan.validate(topo), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.brownouts = {{0, 0, 5, 1.5}};  // factor outside [0, 1]
    EXPECT_THROW(plan.validate(topo), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.link_degradations = {{0, 0, 5, 0.5}};  // delay factor < 1
    EXPECT_THROW(plan.validate(topo), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.link_outages = {{0, 7, 3}};  // until < from
    EXPECT_THROW(plan.validate(topo), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// Chaos generator

TEST(ChaosGenerator, ZeroIntensityYieldsEmptyPlan) {
  util::Rng rng(5);
  const mec::Topology topo = two_stations();
  ChaosParams chaos;
  chaos.intensity = 0.0;
  const FaultPlan plan = generate_chaos(topo, chaos, 500, rng);
  EXPECT_TRUE(plan.empty());
}

TEST(ChaosGenerator, SeedDeterminesPlanExactly) {
  util::Rng rng(12);
  mec::TopologyParams tparams;
  tparams.num_stations = 12;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  ChaosParams chaos;
  chaos.intensity = 2.0;

  const auto render = [&](std::uint64_t seed) {
    util::Rng plan_rng(seed);
    const FaultPlan plan = generate_chaos(topo, chaos, 400, plan_rng);
    plan.validate(topo);  // every sampled event must be legal
    std::ostringstream os;
    write_fault_plan(plan, os);
    return os.str();
  };
  const std::string a = render(12345);
  EXPECT_EQ(a, render(12345));
  EXPECT_GT(a.size(), std::string("# mecar fault scenario\n").size())
      << "intensity 2.0 over 400 slots sampled no events";
}

// ---------------------------------------------------------------------------
// Scenario file round-trip and parse diagnostics

TEST(FaultPlanIo, RoundTripsThroughScenarioFormat) {
  FaultPlan plan;
  plan.station_outages = {{0, 2, 10}};
  plan.brownouts = {{1, 5, 25, 0.5}};
  plan.link_outages = {{0, 3, 9}};
  plan.link_degradations = {{0, 9, 14, 4.0}};

  std::ostringstream os;
  write_fault_plan(plan, os);
  std::istringstream is(os.str());
  const FaultPlan back = read_fault_plan(is);
  ASSERT_EQ(back.num_events(), plan.num_events());
  std::ostringstream os2;
  write_fault_plan(back, os2);
  EXPECT_EQ(os.str(), os2.str());
}

TEST(FaultPlanIo, SkipsCommentsAndBlankLines) {
  std::istringstream is(
      "# a comment\n"
      "\n"
      "station_outage 0 2 10\n");
  const FaultPlan plan = read_fault_plan(is);
  ASSERT_EQ(plan.station_outages.size(), 1u);
  EXPECT_EQ(plan.station_outages[0].station, 0);
  EXPECT_EQ(plan.station_outages[0].from_slot, 2);
  EXPECT_EQ(plan.station_outages[0].until_slot, 10);
}

TEST(FaultPlanIo, ParseErrorsCarryLineNumbers) {
  const auto line_of = [](const std::string& text) {
    std::istringstream is(text);
    try {
      read_fault_plan(is);
    } catch (const FaultPlanParseError& e) {
      EXPECT_NE(std::string(e.what()).find("fault plan line"),
                std::string::npos);
      return e.line();
    }
    return -1;
  };
  EXPECT_EQ(line_of("station_outage 0 2\n"), 1);  // arity
  EXPECT_EQ(line_of("# ok\nbrownout 0 0 5 abc\n"), 2);  // bad factor
  EXPECT_EQ(line_of("station_outage 0 2 10\n\nbogus 1 2 3\n"), 3);
  EXPECT_EQ(line_of("link_outage 0 zero 5\n"), 1);  // bad from_slot
}

// ---------------------------------------------------------------------------
// End-to-end: link faults in the simulator

/// Places waiting requests at station 1; re-places displaced streams at
/// station 0 (the user's home, always reachable).
class PlaceAt1Policy final : public OnlinePolicy {
 public:
  SlotDecision decide(const SlotView& view) override {
    SlotDecision d;
    for (int j : view.pending) {
      const RequestState& st = (*view.states)[static_cast<std::size_t>(j)];
      if (st.phase == Phase::kServed && st.station < 0) {
        d.active.push_back({j, 0});
      } else if (st.phase == Phase::kServed) {
        d.active.push_back({j, st.station});
      } else {
        d.active.push_back({j, 1});
      }
    }
    return d;
  }
  std::string name() const override { return "PlaceAt1"; }
};

/// Anchors everything at station 0.
class AnchorPolicy final : public OnlinePolicy {
 public:
  SlotDecision decide(const SlotView& view) override {
    SlotDecision d;
    for (int j : view.pending) {
      const RequestState& st = (*view.states)[static_cast<std::size_t>(j)];
      d.active.push_back({j, st.phase == Phase::kServed ? st.station : 0});
    }
    return d;
  }
  std::string name() const override { return "Anchor"; }
};

/// Schedules nothing, ever.
class NullPolicy final : public OnlinePolicy {
 public:
  SlotDecision decide(const SlotView&) override { return {}; }
  std::string name() const override { return "Null"; }
};

TEST(LinkFaults, LinkCutDisplacesAndPolicyRecoversSameSlot) {
  const mec::Topology topo = two_stations();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 4)};
  OnlineParams params;
  params.horizon_slots = 20;
  params.faults.link_outages = {{0, 2, 10}};  // backhaul cut in [2, 10)
  OnlineSimulator sim(topo, requests, {0}, params);
  PlaceAt1Policy policy;
  const auto m = sim.run(policy);
  // Served remotely at station 1; the cut partitions the user from its
  // service instance, displacing the stream (not a station death).
  EXPECT_EQ(m.displaced, 1);
  EXPECT_EQ(m.resilience.displaced_partition, 1);
  EXPECT_EQ(m.resilience.displaced_outage, 0);
  // The policy re-placed it at home the same slot: zero-slot recovery.
  EXPECT_EQ(m.resilience.recovered, 1);
  EXPECT_EQ(m.resilience.unrecovered, 0);
  EXPECT_DOUBLE_EQ(m.resilience.mean_recovery_slots, 0.0);
  EXPECT_EQ(m.completed, 1);
  EXPECT_DOUBLE_EQ(m.total_reward, 500.0);
  // Two fault epochs: the cut at slot 2 and the return to healthy at 10.
  EXPECT_EQ(m.resilience.fault_epochs, 2);
}

TEST(LinkFaults, BrownoutStretchesCompletionTime) {
  // Demand exactly matches capacity: healthy, a 4-slot session finishes at
  // slot 3; at half capacity it needs 8 slots and finishes at slot 7 —
  // the brownout halves throughput without dropping anything.
  const mec::Topology topo = one_station(1000.0);
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 4)};  // 1000 MHz

  const auto completion_slot = [&](FaultPlan faults) {
    OnlineParams params;
    params.horizon_slots = 20;
    params.faults = std::move(faults);
    OnlineSimulator sim(topo, requests, {0}, params);
    AnchorPolicy policy;
    const auto m = sim.run(policy);
    EXPECT_EQ(m.completed, 1);
    for (std::size_t t = 0; t < m.per_slot_reward.size(); ++t) {
      if (m.per_slot_reward[t] > 0.0) return static_cast<int>(t);
    }
    return -1;
  };

  EXPECT_EQ(completion_slot({}), 3);
  FaultPlan brownout;
  brownout.brownouts = {{0, 0, 20, 0.5}};
  EXPECT_EQ(completion_slot(std::move(brownout)), 7);
}

TEST(DropAttribution, DegradedLatencyDropIsFaultCaused) {
  // Station 0 is dead the whole horizon and the only link is degraded so
  // hard that station 1 is out of budget (2 * 2ms * 50 + 2.4ms processing
  // = 202.4ms > 200ms). Only the faults stand between the request and a
  // feasible placement every slot, so its drop is fault-attributed.
  const mec::Topology topo = two_stations();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 4)};
  OnlineParams params;
  params.horizon_slots = 12;
  params.faults.station_outages = {{0, 0, 12}};
  params.faults.link_degradations = {{0, 0, 12, 50.0}};
  OnlineSimulator sim(topo, requests, {0}, params);
  NullPolicy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.dropped, 1);
  EXPECT_EQ(m.resilience.dropped_fault, 1);
  EXPECT_EQ(m.resilience.dropped_starvation, 0);
  EXPECT_EQ(m.resilience.dropped_partition, 0);
  EXPECT_DOUBLE_EQ(m.resilience.fault_dropped_expected_reward, 500.0);
}

TEST(DropAttribution, CutOffDropIsPartitionCaused) {
  // Station 0 dead, the only link cut: no live station is reachable at
  // all, so the drop is partition-attributed.
  const mec::Topology topo = two_stations();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 4)};
  OnlineParams params;
  params.horizon_slots = 12;
  params.faults.station_outages = {{0, 0, 12}};
  params.faults.link_outages = {{0, 0, 12}};
  OnlineSimulator sim(topo, requests, {0}, params);
  NullPolicy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.dropped, 1);
  EXPECT_EQ(m.resilience.dropped_partition, 1);
  EXPECT_EQ(m.resilience.dropped_fault, 0);
  EXPECT_EQ(m.resilience.dropped_starvation, 0);
}

TEST(DropAttribution, ContentionDropStaysStarvation) {
  // No faults at all: a never-scheduled request is plain starvation and
  // every fault counter stays zero.
  const mec::Topology topo = two_stations();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 4)};
  OnlineParams params;
  params.horizon_slots = 12;
  OnlineSimulator sim(topo, requests, {0}, params);
  NullPolicy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.dropped, 1);
  EXPECT_EQ(m.resilience.dropped_starvation, 1);
  EXPECT_EQ(m.resilience.dropped_fault, 0);
  EXPECT_EQ(m.resilience.dropped_partition, 0);
  EXPECT_DOUBLE_EQ(m.resilience.fault_dropped_expected_reward, 0.0);
}

TEST(LinkFaults, LegacyOutagesAndFaultPlanAgree) {
  // The legacy OnlineParams::outages list and the same outage expressed in
  // the FaultPlan must produce identical runs.
  const mec::Topology topo = two_stations();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 6)};

  const auto run = [&](OnlineParams params) {
    params.horizon_slots = 30;
    OnlineSimulator sim(topo, requests, {0}, params);
    PlaceAt1Policy policy;
    return sim.run(policy);
  };
  OnlineParams legacy;
  legacy.outages = {{1, 2, 10}};
  OnlineParams scripted;
  scripted.faults.station_outages = {{1, 2, 10}};
  const auto a = run(legacy);
  const auto b = run(scripted);
  EXPECT_EQ(a.displaced, b.displaced);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.total_reward, b.total_reward);
  EXPECT_EQ(a.per_slot_reward, b.per_slot_reward);
  EXPECT_EQ(a.resilience.displaced_outage, b.resilience.displaced_outage);
}

}  // namespace
}  // namespace mecar::sim
