// Tests for the versioned snapshot framing (util/snapshot.h): bit-exact
// round trips for every wire type (IEEE-754 specials included), the
// framed-buffer validation (magic, version, length, CRC32), and the two
// robustness properties the crash-recovery pipeline leans on — EVERY
// truncation and EVERY single-bit flip of a framed buffer must surface as
// a structured SnapshotParseError, never as silently misread state. (The
// bit-flip property is exhaustive, not sampled: CRC32 is linear, so
// CRC(x ^ e) = CRC(x) ^ CRC(e) and a one-bit error pattern e has
// CRC(e) != 0 — a single flip can never collide.) Also covers the
// atomic_write_file durable-replace protocol.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "util/snapshot.h"

namespace mecar::util {
namespace {

constexpr std::uint32_t kMagic = 0x54534554u;  // "TEST"
constexpr std::uint32_t kVersion = 7;

std::vector<std::uint8_t> sample_frame() {
  SnapshotWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.i64(std::numeric_limits<std::int64_t>::min());
  w.f64(3.141592653589793);
  w.boolean(true);
  w.boolean(false);
  w.str(std::string("nul\0inside\xff", 11));
  w.bytes({0x00, 0xff, 0x7f});
  w.vec(std::vector<double>{1.5, -2.5}, [&](double v) { w.f64(v); });
  return w.finish(kMagic, kVersion);
}

TEST(Snapshot, RoundTripAllTypes) {
  const std::vector<std::uint8_t> framed = sample_frame();
  SnapshotReader r(framed, kMagic, kVersion);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), std::string("nul\0inside\xff", 11));
  EXPECT_EQ(r.bytes(), (std::vector<std::uint8_t>{0x00, 0xff, 0x7f}));
  const auto v = r.vec<double>([&] { return r.f64(); });
  EXPECT_EQ(v, (std::vector<double>{1.5, -2.5}));
  EXPECT_TRUE(r.at_end());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Snapshot, DoublesRoundTripBitExact) {
  const double specials[] = {
      0.0,
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::lowest(),
      std::numeric_limits<double>::epsilon(),
  };
  SnapshotWriter w;
  for (const double d : specials) w.f64(d);
  const std::vector<std::uint8_t> framed = w.finish(kMagic, kVersion);
  SnapshotReader r(framed, kMagic, kVersion);
  for (const double d : specials) {
    const double got = r.f64();
    std::uint64_t want_bits = 0, got_bits = 0;
    std::memcpy(&want_bits, &d, sizeof d);
    std::memcpy(&got_bits, &got, sizeof got);
    EXPECT_EQ(got_bits, want_bits);  // bit pattern, not value (NaN, -0.0)
  }
  r.expect_end();
}

TEST(Snapshot, WrongMagicRejectedAtOffsetZero) {
  const std::vector<std::uint8_t> framed = sample_frame();
  try {
    SnapshotReader r(framed, kMagic + 1, kVersion);
    FAIL() << "bad magic accepted";
  } catch (const SnapshotParseError& e) {
    EXPECT_EQ(e.offset(), 0u);
  }
}

TEST(Snapshot, WrongVersionRejectedAtOffsetFour) {
  const std::vector<std::uint8_t> framed = sample_frame();
  try {
    SnapshotReader r(framed, kMagic, kVersion + 1);
    FAIL() << "bad version accepted";
  } catch (const SnapshotParseError& e) {
    EXPECT_EQ(e.offset(), 4u);
  }
}

TEST(Snapshot, EveryTruncationRejected) {
  const std::vector<std::uint8_t> framed = sample_frame();
  for (std::size_t len = 0; len < framed.size(); ++len) {
    const std::vector<std::uint8_t> cut(framed.begin(), framed.begin() + len);
    EXPECT_THROW(SnapshotReader(cut, kMagic, kVersion), SnapshotParseError)
        << "accepted a frame truncated to " << len << " bytes";
  }
}

TEST(Snapshot, EverySingleBitFlipRejected) {
  const std::vector<std::uint8_t> framed = sample_frame();
  for (std::size_t byte = 0; byte < framed.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bad = framed;
      bad[byte] = static_cast<std::uint8_t>(bad[byte] ^ (1u << bit));
      EXPECT_THROW(SnapshotReader(bad, kMagic, kVersion), SnapshotParseError)
          << "accepted a flip of bit " << bit << " in byte " << byte;
    }
  }
}

TEST(Snapshot, TypeTagMismatchDiagnosed) {
  SnapshotWriter w;
  w.u32(5);
  const std::vector<std::uint8_t> framed = w.finish(kMagic, kVersion);
  SnapshotReader r(framed, kMagic, kVersion);
  EXPECT_THROW(r.f64(), SnapshotParseError);  // u32 on the wire, f64 asked
}

TEST(Snapshot, TrailingGarbageIsASchemaMismatch) {
  SnapshotWriter w;
  w.u8(1);
  w.u8(2);
  const std::vector<std::uint8_t> framed = w.finish(kMagic, kVersion);
  SnapshotReader r(framed, kMagic, kVersion);
  EXPECT_EQ(r.u8(), 1);
  EXPECT_FALSE(r.at_end());
  EXPECT_THROW(r.expect_end(), SnapshotParseError);
}

TEST(Snapshot, AbsurdVectorCountRejectedNotAllocated) {
  // A corrupted count must be caught by the bounds check, not by a
  // multi-terabyte reserve. The count survives CRC here because we frame
  // it honestly — the reader still has to distrust it.
  SnapshotWriter w;
  w.u64(std::numeric_limits<std::uint64_t>::max() / 2);
  const std::vector<std::uint8_t> framed = w.finish(kMagic, kVersion);
  SnapshotReader r(framed, kMagic, kVersion);
  EXPECT_THROW(r.vec<double>([&] { return r.f64(); }), SnapshotParseError);
}

TEST(Snapshot, NestedUnframedPayload) {
  SnapshotWriter inner;
  inner.i32(-7);
  inner.str("blob");
  SnapshotWriter outer;
  outer.bytes(inner.payload());
  const std::vector<std::uint8_t> framed = outer.finish(kMagic, kVersion);
  SnapshotReader r(framed, kMagic, kVersion);
  const std::vector<std::uint8_t> blob = r.bytes();
  SnapshotReader nested = SnapshotReader::unframed(blob);
  EXPECT_EQ(nested.i32(), -7);
  EXPECT_EQ(nested.str(), "blob");
  nested.expect_end();
  r.expect_end();
}

TEST(Snapshot, Crc32MatchesReferenceVector) {
  // The canonical zlib check value for "123456789".
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xcbf43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Snapshot, AtomicWriteFileReplacesDurably) {
  const std::string path =
      ::testing::TempDir() + "snapshot_atomic_write_test.bin";
  const std::vector<std::uint8_t> first{1, 2, 3};
  const std::vector<std::uint8_t> second{9, 8, 7, 6};
  atomic_write_file(path, first);
  EXPECT_EQ(read_file_bytes(path), first);
  atomic_write_file(path, second);  // replace, not append
  EXPECT_EQ(read_file_bytes(path), second);
  std::remove(path.c_str());
  EXPECT_THROW(read_file_bytes(path), std::runtime_error);
}

TEST(Snapshot, AtomicWriteFileRejectsBadDirectory) {
  EXPECT_THROW(
      atomic_write_file("/nonexistent-dir-for-sure/x.bin", {1, 2, 3}),
      std::runtime_error);
}

}  // namespace
}  // namespace mecar::util
