// User-mobility (handover) tests: moves change placement feasibility for
// waiting requests, can rescue or doom them, and leave served sessions
// anchored to their instances.
#include <gtest/gtest.h>

#include "mec/workload.h"
#include "sim/dynamic_rr.h"
#include "sim/online_sim.h"
#include "util/rng.h"

namespace mecar::sim {
namespace {

/// Two islands joined by a slow link: station 0 (fast, near) and
/// station 1 far enough that serving from it violates the budget.
mec::Topology islands() {
  std::vector<mec::BaseStation> stations{
      {0, 2000.0, 1.0, 0.0, 0.0},
      {1, 2000.0, 1.0, 1.0, 0.0},
  };
  std::vector<mec::Link> links{{0, 1, 120.0}};  // 2x120 ms hop
  return mec::Topology(std::move(stations), std::move(links));
}

mec::ARRequest roaming_request(int id, int home, int arrival) {
  mec::ARRequest req;
  req.id = id;
  req.home_station = home;
  req.tasks = mec::ar_pipeline(3);  // weight 2.4 -> 2.4 ms processing
  req.demand = mec::RateRewardDist({{50.0, 1.0, 500.0}});
  req.latency_budget_ms = 100.0;  // cannot cross the 240 ms round trip
  req.arrival_slot = arrival;
  req.duration_slots = 4;
  return req;
}

/// Serves any feasible waiting request at its home station.
class HomePolicy final : public OnlinePolicy {
 public:
  SlotDecision decide(const SlotView& view) override {
    SlotDecision d;
    for (int j : view.pending) {
      const RequestState& st = (*view.states)[static_cast<std::size_t>(j)];
      const auto& req = (*view.requests)[static_cast<std::size_t>(j)];
      if (st.phase == Phase::kServed) {
        d.active.push_back({j, st.station});
      } else if (view.waiting_ms(j) +
                     mec::placement_latency_ms(*view.topo, req,
                                               req.home_station) <=
                 req.latency_budget_ms) {
        d.active.push_back({j, req.home_station});
      }
    }
    return d;
  }
  std::string name() const override { return "Home"; }
};

TEST(Mobility, HandoverIsCountedAndHomeChanges) {
  const mec::Topology topo = islands();
  // Arrives at slot 5 attached to 0; moves to 1 at slot 2 (before arrival,
  // harmless) and back at slot 4.
  std::vector<mec::ARRequest> requests{roaming_request(0, 0, 5)};
  OnlineParams params;
  params.horizon_slots = 20;
  params.mobility = {{0, 2, 1}, {0, 4, 0}};
  OnlineSimulator sim(topo, requests, {0}, params);
  HomePolicy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.handovers, 2);
  EXPECT_EQ(m.completed, 1);
}

TEST(Mobility, MoveOutOfCoverageStarvesWaitingRequest) {
  const mec::Topology topo = islands();
  // Request homed at 0 arrives at slot 0, but the user roams to the far
  // island at slot 0 before service: every placement now violates the
  // budget (min latency from home 1 is 2.4ms local... wait: station 1 is a
  // valid local placement). Use a policy that only serves from station 0.
  std::vector<mec::ARRequest> requests{roaming_request(0, 0, 0)};
  OnlineParams params;
  params.horizon_slots = 20;
  params.mobility = {{0, 0, 1}};

  class OnlyStation0 final : public OnlinePolicy {
   public:
    SlotDecision decide(const SlotView& view) override {
      SlotDecision d;
      for (int j : view.pending) {
        const RequestState& st = (*view.states)[static_cast<std::size_t>(j)];
        if (st.phase == Phase::kServed) {
          d.active.push_back({j, st.station});
        } else {
          d.active.push_back({j, 0});
        }
      }
      return d;
    }
    std::string name() const override { return "OnlyStation0"; }
  };

  OnlineSimulator sim(topo, requests, {0}, params);
  OnlyStation0 policy;
  const auto m = sim.run(policy);
  // After the move, placing at station 0 costs 2*120 ms transmission:
  // rejected by the simulator; the request eventually starves.
  EXPECT_EQ(m.completed, 0);
  EXPECT_EQ(m.dropped, 1);
}

TEST(Mobility, ServedSessionStaysAnchored) {
  const mec::Topology topo = islands();
  std::vector<mec::ARRequest> requests{roaming_request(0, 0, 0)};
  OnlineParams params;
  params.horizon_slots = 20;
  params.mobility = {{0, 2, 1}};  // moves AFTER service started
  OnlineSimulator sim(topo, requests, {0}, params);
  HomePolicy policy;
  const auto m = sim.run(policy);
  // The session completes at its original instance despite the move.
  EXPECT_EQ(m.handovers, 1);
  EXPECT_EQ(m.completed, 1);
  EXPECT_DOUBLE_EQ(m.total_reward, 500.0);
}

TEST(Mobility, ValidatesEvents) {
  const mec::Topology topo = islands();
  std::vector<mec::ARRequest> requests{roaming_request(0, 0, 0)};
  OnlineParams params;
  params.horizon_slots = 5;
  params.mobility = {{7, 0, 0}};  // unknown request
  OnlineSimulator sim(topo, requests, {0}, params);
  HomePolicy policy;
  EXPECT_THROW(sim.run(policy), std::out_of_range);
}

TEST(Mobility, NoOpMoveDoesNotCount) {
  const mec::Topology topo = islands();
  std::vector<mec::ARRequest> requests{roaming_request(0, 0, 0)};
  OnlineParams params;
  params.horizon_slots = 20;
  params.mobility = {{0, 1, 0}};  // "moves" to where it already is
  OnlineSimulator sim(topo, requests, {0}, params);
  HomePolicy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.handovers, 0);
}

TEST(Mobility, RealPoliciesHandleRoamingWorkload) {
  util::Rng rng(61);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 150;
  wparams.horizon_slots = 300;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);
  OnlineParams params;
  params.horizon_slots = 300;
  // A quarter of the users roam once, at a random time, to a random cell.
  for (int j = 0; j < 150; j += 4) {
    params.mobility.push_back(
        {j, static_cast<int>(rng.uniform_int(0, 299)),
         static_cast<int>(rng.uniform_int(0, topo.num_stations() - 1))});
  }
  DynamicRrPolicy policy(topo, core::AlgorithmParams{}, DynamicRrParams{},
                         util::Rng(62));
  OnlineSimulator sim(topo, requests, realized, params);
  const auto m = sim.run(policy);
  EXPECT_EQ(m.completed + m.dropped + m.unfinished, m.arrived);
  EXPECT_GT(m.completed, 0);
}

}  // namespace
}  // namespace mecar::sim
