// Tests for checkpoint orchestration (sim/checkpoint.h): mid-run
// SimSnapshot capture via SlotHook and bit-identical resume — on the
// legacy slot loop, on the sharded loop, and ACROSS engines (the snapshot
// is canonical state, so a run checkpointed under one engine must resume
// identically under the other) — plus byte-stable serialization of
// SimSnapshot itself, the CheckpointStore generation ledger (atomic
// writes, newest-first listing, prune-to-two retention), and the
// corrupted-newest-generation fallback the resume ladder performs.
//
// Equality is EXPECT_EQ on doubles throughout: the checkpoint contract is
// bit-identity, not tolerance-equality.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exp/instance.h"
#include "sim/checkpoint.h"
#include "sim/dynamic_rr.h"
#include "sim/online_baselines.h"
#include "sim/online_sim.h"
#include "util/rng.h"
#include "util/snapshot.h"

namespace mecar::sim {
namespace {

constexpr std::uint32_t kMagic = 0x54504b43u;  // "CKPT" (test-local frame)
constexpr std::uint32_t kVersion = 1;

exp::Instance busy_instance(unsigned seed, int horizon) {
  exp::InstanceConfig config;
  config.num_requests = 200;
  config.num_stations = 10;
  config.horizon_slots = horizon;
  return exp::make_instance(seed, config);
}

/// Chaos the resume path must survive: outages, a brownout, a link cut,
/// solver faults, and cross-shard mobility, all straddling the capture
/// slot so in-flight fault state lands inside the snapshot.
OnlineParams chaos_params(const exp::Instance& inst, int horizon) {
  OnlineParams params;
  params.horizon_slots = horizon;
  params.collect_detail = true;
  params.faults.station_outages.push_back({2, 40, 90});
  params.faults.station_outages.push_back({7, 100, 150});
  params.faults.brownouts.push_back({4, 60, 140, 0.4});
  if (!inst.topo.links().empty()) {
    params.faults.link_outages.push_back({0, 80, 130});
  }
  params.faults.solver_budgets.push_back({30, 80, 6});
  params.faults.solver_jams.push_back({110, 140});
  params.mobility.push_back({5, 50, 9});
  params.mobility.push_back({12, 70, 0});
  params.mobility.push_back({30, 120, 8});
  return params;
}

enum class PolicyKind { kDynamicRr, kGreedy };

std::unique_ptr<OnlinePolicy> make_policy(PolicyKind kind,
                                          const mec::Topology& topo) {
  if (kind == PolicyKind::kGreedy) {
    return std::make_unique<GreedyOnlinePolicy>(topo, core::AlgorithmParams{});
  }
  return std::make_unique<DynamicRrPolicy>(topo, core::AlgorithmParams{},
                                           DynamicRrParams{}, util::Rng(7));
}

struct CaptureHook final : SlotHook {
  int at_slot;
  std::optional<SimSnapshot> snap;
  explicit CaptureHook(int slot) : at_slot(slot) {}
  bool want_snapshot(int slot) override { return slot == at_slot; }
  void on_snapshot(int, SimSnapshot s) override { snap = std::move(s); }
};

void expect_identical(const OnlineMetrics& a, const OnlineMetrics& b,
                      const char* label) {
  EXPECT_EQ(a.total_reward, b.total_reward) << label;
  EXPECT_EQ(a.arrived, b.arrived) << label;
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.dropped, b.dropped) << label;
  EXPECT_EQ(a.unfinished, b.unfinished) << label;
  EXPECT_EQ(a.displaced, b.displaced) << label;
  EXPECT_EQ(a.handovers, b.handovers) << label;
  EXPECT_EQ(a.avg_latency_ms, b.avg_latency_ms) << label;
  EXPECT_EQ(a.per_slot_reward, b.per_slot_reward) << label;
  EXPECT_EQ(a.completed_latencies_ms, b.completed_latencies_ms) << label;
  EXPECT_EQ(a.per_slot_utilization, b.per_slot_utilization) << label;
  EXPECT_EQ(a.service_ratios, b.service_ratios) << label;
  EXPECT_EQ(a.resilience.fault_epochs, b.resilience.fault_epochs) << label;
  EXPECT_EQ(a.resilience.displaced_outage, b.resilience.displaced_outage)
      << label;
  EXPECT_EQ(a.resilience.recovered, b.resilience.recovered) << label;
  EXPECT_EQ(a.resilience.mean_recovery_slots, b.resilience.mean_recovery_slots)
      << label;
  EXPECT_EQ(a.resilience.dropped_fault, b.resilience.dropped_fault) << label;
  EXPECT_EQ(a.resilience.fault_dropped_expected_reward,
            b.resilience.fault_dropped_expected_reward)
      << label;
}

/// Runs uninterrupted; then runs again with a snapshot captured at
/// `capture_slot` (under `capture_shards`), round-trips the snapshot
/// through the binary frame, and resumes a THIRD simulator (under
/// `resume_shards`) from the decoded copy. Both must match.
void expect_resume_identical(const exp::Instance& inst,
                             const OnlineParams& base, PolicyKind kind,
                             int capture_shards, int resume_shards,
                             int capture_slot, const char* label) {
  OnlineParams params = base;
  params.num_shards = capture_shards;

  OnlineSimulator full(inst.topo, inst.requests, inst.realized, params);
  auto full_policy = make_policy(kind, inst.topo);
  const OnlineMetrics uninterrupted = full.run(*full_policy);

  OnlineSimulator first(inst.topo, inst.requests, inst.realized, params);
  auto first_policy = make_policy(kind, inst.topo);
  CaptureHook hook(capture_slot);
  const OnlineMetrics first_metrics = first.run(*first_policy, &hook);
  expect_identical(uninterrupted, first_metrics, label);
  ASSERT_TRUE(hook.snap.has_value()) << label;
  EXPECT_EQ(hook.snap->next_slot, capture_slot) << label;

  // The resumed run sees only what a crashed process would: the snapshot
  // after a disk round trip, and a freshly constructed policy.
  util::SnapshotWriter w;
  save_sim_snapshot(w, *hook.snap);
  const std::vector<std::uint8_t> framed = w.finish(kMagic, kVersion);
  util::SnapshotReader r(framed, kMagic, kVersion);
  const SimSnapshot decoded = load_sim_snapshot(r);
  r.expect_end();

  params.num_shards = resume_shards;
  OnlineSimulator resumed(inst.topo, inst.requests, inst.realized, params);
  auto resumed_policy = make_policy(kind, inst.topo);
  const OnlineMetrics metrics = resumed.run(*resumed_policy, nullptr, &decoded);
  expect_identical(uninterrupted, metrics, label);
}

TEST(CheckpointResume, LegacyEngineUnderChaos) {
  const exp::Instance inst = busy_instance(11, 260);
  expect_resume_identical(inst, chaos_params(inst, 260), PolicyKind::kDynamicRr,
                          -1, -1, 115, "DynamicRR/legacy");
  expect_resume_identical(inst, chaos_params(inst, 260), PolicyKind::kGreedy,
                          -1, -1, 115, "Greedy/legacy");
}

TEST(CheckpointResume, ShardedEngineUnderChaos) {
  const exp::Instance inst = busy_instance(13, 260);
  expect_resume_identical(inst, chaos_params(inst, 260), PolicyKind::kDynamicRr,
                          5, 5, 115, "DynamicRR/sharded");
}

TEST(CheckpointResume, CrossEngineBothDirections) {
  const exp::Instance inst = busy_instance(17, 260);
  expect_resume_identical(inst, chaos_params(inst, 260), PolicyKind::kDynamicRr,
                          -1, 5, 115, "DynamicRR/legacy->sharded");
  expect_resume_identical(inst, chaos_params(inst, 260), PolicyKind::kDynamicRr,
                          5, -1, 115, "DynamicRR/sharded->legacy");
}

TEST(CheckpointResume, CaptureSlotBoundaries) {
  // Slot 0 (nothing has happened yet) and the final slot (everything
  // already happened) are the degenerate snapshots most likely to trip
  // off-by-ones in the restore path.
  const exp::Instance inst = busy_instance(19, 120);
  OnlineParams params;
  params.horizon_slots = 120;
  expect_resume_identical(inst, params, PolicyKind::kDynamicRr, -1, -1, 0,
                          "DynamicRR/slot0");
  expect_resume_identical(inst, params, PolicyKind::kDynamicRr, -1, -1, 119,
                          "DynamicRR/last-slot");
}

TEST(CheckpointResume, SnapshotRejectsMismatchedWorkload) {
  const exp::Instance inst = busy_instance(23, 80);
  OnlineParams params;
  params.horizon_slots = 80;
  OnlineSimulator sim(inst.topo, inst.requests, inst.realized, params);
  auto policy = make_policy(PolicyKind::kGreedy, inst.topo);
  CaptureHook hook(40);
  sim.run(*policy, &hook);
  ASSERT_TRUE(hook.snap.has_value());

  const exp::Instance other = busy_instance(23, 80);
  OnlineParams small = params;
  std::vector<mec::ARRequest> fewer(other.requests.begin(),
                                    other.requests.end() - 5);
  std::vector<std::size_t> fewer_realized(other.realized.begin(),
                                          other.realized.end() - 5);
  OnlineSimulator mismatched(other.topo, fewer, fewer_realized, small);
  auto fresh = make_policy(PolicyKind::kGreedy, other.topo);
  EXPECT_THROW(mismatched.run(*fresh, nullptr, &*hook.snap),
               std::invalid_argument);
}

TEST(CheckpointSerialization, SimSnapshotReencodesByteStable) {
  // encode -> decode -> encode must reproduce the exact payload: any
  // field the decoder normalizes or drops would diverge here and break
  // resumed-run determinism.
  const exp::Instance inst = busy_instance(29, 200);
  OnlineParams params = chaos_params(inst, 200);
  OnlineSimulator sim(inst.topo, inst.requests, inst.realized, params);
  auto policy = make_policy(PolicyKind::kDynamicRr, inst.topo);
  CaptureHook hook(95);
  sim.run(*policy, &hook);
  ASSERT_TRUE(hook.snap.has_value());

  util::SnapshotWriter first;
  save_sim_snapshot(first, *hook.snap);
  util::SnapshotReader r = util::SnapshotReader::unframed(first.payload());
  const SimSnapshot decoded = load_sim_snapshot(r);
  r.expect_end();
  util::SnapshotWriter second;
  save_sim_snapshot(second, decoded);
  EXPECT_EQ(first.payload(), second.payload());
}

/// TempDir() persists across test runs; start every store test from an
/// empty generation ledger.
void wipe_generations(CheckpointStore& store) {
  for (const std::string& path : store.generations()) {
    std::remove(path.c_str());
  }
}

TEST(CheckpointStore, GenerationsNewestFirstAndPrunedToTwo) {
  const std::string dir = ::testing::TempDir() + "ckpt_store_prune_test";
  CheckpointStore store(dir);
  wipe_generations(store);
  EXPECT_TRUE(store.generations().empty());

  util::SnapshotWriter w1;
  w1.u32(1);
  const std::string p1 = store.write(w1.finish(kMagic, kVersion));
  util::SnapshotWriter w2;
  w2.u32(2);
  const std::string p2 = store.write(w2.finish(kMagic, kVersion));
  util::SnapshotWriter w3;
  w3.u32(3);
  const std::string p3 = store.write(w3.finish(kMagic, kVersion));

  const std::vector<std::string> gens = store.generations();
  ASSERT_EQ(gens.size(), 2u);  // oldest generation pruned
  EXPECT_EQ(gens[0], p3);
  EXPECT_EQ(gens[1], p2);
  EXPECT_THROW(CheckpointStore::read_file(p1), std::runtime_error);

  util::SnapshotReader r(CheckpointStore::read_file(p3), kMagic, kVersion);
  EXPECT_EQ(r.u32(), 3u);
  r.expect_end();
}

TEST(CheckpointStore, CorruptedNewestFallsBackToPrevious) {
  // The resume ladder walks generations newest-first and drops to the
  // next on SnapshotParseError; emulate it against a truncated newest.
  const std::string dir = ::testing::TempDir() + "ckpt_store_fallback_test";
  CheckpointStore store(dir);
  wipe_generations(store);
  util::SnapshotWriter good;
  good.str("previous generation");
  store.write(good.finish(kMagic, kVersion));
  util::SnapshotWriter newest;
  newest.str("newest generation");
  std::vector<std::uint8_t> framed = newest.finish(kMagic, kVersion);
  framed.resize(framed.size() - 5);  // torn tail
  const std::string newest_path = store.write(framed);

  std::string recovered;
  std::size_t rejected_at = 0;
  for (const std::string& path : store.generations()) {
    try {
      util::SnapshotReader r(CheckpointStore::read_file(path), kMagic,
                             kVersion);
      recovered = r.str();
      r.expect_end();
      break;
    } catch (const util::SnapshotParseError& e) {
      EXPECT_EQ(path, newest_path);
      rejected_at = e.offset();
    }
  }
  EXPECT_EQ(recovered, "previous generation");
  EXPECT_GT(rejected_at, 0u);  // structured offset, not a blind failure
}

TEST(CheckpointCrashInjection, DisarmedPointsAreInert) {
  // The armed variants SIGKILL the process, so a unit test can only pin
  // the negative space: disarmed crash points must do nothing even when a
  // scripted plan-crash flag is raised (the --resume semantics).
  disarm_crashes();
  crash_point(150, true);
  unit_crash_point(1000);
  SUCCEED();
}

}  // namespace
}  // namespace mecar::sim
