// Tests for the bandit subsystem: successive elimination (correct arm kept,
// dominated arms pruned, sublinear regret), UCB1, epsilon-greedy, the
// Lipschitz grid, and regret tracking.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bandit/epsilon_greedy.h"
#include "bandit/lipschitz.h"
#include "bandit/regret.h"
#include "bandit/successive_elimination.h"
#include "bandit/ucb1.h"
#include "util/rng.h"

namespace mecar::bandit {
namespace {

/// Bernoulli bandit environment with fixed means.
struct BernoulliEnv {
  std::vector<double> means;
  util::Rng rng;
  double pull(int arm) {
    return rng.bernoulli(means[static_cast<std::size_t>(arm)]) ? 1.0 : 0.0;
  }
  double best() const {
    double b = 0.0;
    for (double m : means) b = std::max(b, m);
    return b;
  }
};

double run_policy(Bandit& policy, BernoulliEnv& env, int rounds,
                  RegretTracker* tracker = nullptr) {
  double total = 0.0;
  for (int t = 0; t < rounds; ++t) {
    const int arm = policy.select_arm();
    const double reward = env.pull(arm);
    policy.update(arm, reward);
    total += reward;
    if (tracker) tracker->record(reward, env.best());
  }
  return total;
}

TEST(SuccessiveElimination, ValidatesConstruction) {
  EXPECT_THROW(SuccessiveElimination(0), std::invalid_argument);
  EXPECT_THROW(SuccessiveElimination(3, -1.0), std::invalid_argument);
}

TEST(SuccessiveElimination, PlaysEveryArmFirst) {
  SuccessiveElimination se(4);
  std::vector<bool> seen(4, false);
  for (int i = 0; i < 4; ++i) {
    const int arm = se.select_arm();
    seen[static_cast<std::size_t>(arm)] = true;
    se.update(arm, 0.5);
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(SuccessiveElimination, EliminatesClearlyDominatedArm) {
  SuccessiveElimination se(2, 1.0);
  // Arm 0 always 1.0, arm 1 always 0.0: deterministic gap.
  for (int t = 0; t < 200 && se.num_active() > 1; ++t) {
    const int arm = se.select_arm();
    se.update(arm, arm == 0 ? 1.0 : 0.0);
  }
  EXPECT_EQ(se.num_active(), 1);
  EXPECT_TRUE(se.is_active(0));
  EXPECT_FALSE(se.is_active(1));
  EXPECT_EQ(se.best_active_arm(), 0);
}

TEST(SuccessiveElimination, NeverEliminatesLastArm) {
  SuccessiveElimination se(3, 0.01);  // tiny radius -> aggressive pruning
  util::Rng rng(3);
  for (int t = 0; t < 500; ++t) {
    const int arm = se.select_arm();
    se.update(arm, rng.uniform());
  }
  EXPECT_GE(se.num_active(), 1);
}

TEST(SuccessiveElimination, BoundsBracketTheMean) {
  SuccessiveElimination se(1, 1.0);
  for (int t = 0; t < 50; ++t) se.update(0, 0.7);
  EXPECT_NEAR(se.mean(0), 0.7, 1e-12);
  EXPECT_GT(se.ucb(0), 0.7);
  EXPECT_LT(se.lcb(0), 0.7);
  EXPECT_NEAR(se.ucb(0) - se.mean(0), se.mean(0) - se.lcb(0), 1e-12);
}

TEST(SuccessiveElimination, UpdateValidatesArm) {
  SuccessiveElimination se(2);
  EXPECT_THROW(se.update(-1, 0.0), std::out_of_range);
  EXPECT_THROW(se.update(2, 0.0), std::out_of_range);
}

TEST(SuccessiveElimination, FindsBestBernoulliArm) {
  BernoulliEnv env{{0.2, 0.5, 0.8, 0.4}, util::Rng(11)};
  SuccessiveElimination se(4, 1.0);
  run_policy(se, env, 3000);
  EXPECT_EQ(se.best_active_arm(), 2);
  EXPECT_NEAR(se.mean(2), 0.8, 0.1);
}

TEST(SuccessiveElimination, RegretIsSublinear) {
  // Average regret per round must shrink as T grows (Theorem 3's
  // O(sqrt(kappa T log T)) term implies regret/T -> 0).
  double early_rate = 0.0, late_rate = 0.0;
  for (unsigned seed = 1; seed <= 5; ++seed) {
    BernoulliEnv env{{0.3, 0.6, 0.9}, util::Rng(seed)};
    SuccessiveElimination se(3, 1.0);
    RegretTracker tracker;
    run_policy(se, env, 4000, &tracker);
    const auto& traj = tracker.trajectory();
    early_rate += traj[399] / 400.0;
    late_rate += traj[3999] / 4000.0;
  }
  EXPECT_LT(late_rate, early_rate);
}

TEST(Ucb1, FindsBestArm) {
  BernoulliEnv env{{0.1, 0.9}, util::Rng(13)};
  Ucb1 ucb(2, 1.0);
  run_policy(ucb, env, 2000);
  EXPECT_GT(ucb.mean(1), ucb.mean(0));
  EXPECT_EQ(ucb.select_arm(), 1);
}

TEST(Ucb1, Validates) {
  EXPECT_THROW(Ucb1(0), std::invalid_argument);
  Ucb1 ucb(2);
  EXPECT_THROW(ucb.update(5, 0.0), std::out_of_range);
}

TEST(EpsilonGreedy, FindsBestArm) {
  BernoulliEnv env{{0.2, 0.7, 0.5}, util::Rng(17)};
  EpsilonGreedy eg(3, util::Rng(18));
  run_policy(eg, env, 3000);
  EXPECT_GT(eg.mean(1), eg.mean(0));
  EXPECT_GT(eg.mean(1), eg.mean(2));
}

TEST(EpsilonGreedy, Validates) {
  EXPECT_THROW(EpsilonGreedy(0, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(EpsilonGreedy(2, util::Rng(1), 0.0), std::invalid_argument);
}

TEST(LipschitzGrid, UniformSpacing) {
  const LipschitzGrid grid(200.0, 1000.0, 5);
  ASSERT_EQ(grid.num_arms(), 5);
  EXPECT_DOUBLE_EQ(grid.value(0), 200.0);
  EXPECT_DOUBLE_EQ(grid.value(4), 1000.0);
  EXPECT_DOUBLE_EQ(grid.spacing(), 200.0);
  EXPECT_DOUBLE_EQ(grid.value(2), 600.0);
}

TEST(LipschitzGrid, SingleArmUsesMidpoint) {
  const LipschitzGrid grid(0.0, 10.0, 1);
  ASSERT_EQ(grid.num_arms(), 1);
  EXPECT_DOUBLE_EQ(grid.value(0), 5.0);
}

TEST(LipschitzGrid, NearestArmClamps) {
  const LipschitzGrid grid(0.0, 10.0, 3);  // arms at 0, 5, 10
  EXPECT_EQ(grid.nearest_arm(-3.0), 0);
  EXPECT_EQ(grid.nearest_arm(4.0), 1);
  EXPECT_EQ(grid.nearest_arm(7.6), 2);
  EXPECT_EQ(grid.nearest_arm(100.0), 2);
}

TEST(LipschitzGrid, DiscretizationErrorIsEtaEpsilon) {
  const LipschitzGrid grid(0.0, 9.0, 10);  // epsilon = 1
  EXPECT_DOUBLE_EQ(grid.discretization_error(2.5), 2.5);
}

TEST(LipschitzGrid, Validates) {
  EXPECT_THROW(LipschitzGrid(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(LipschitzGrid(2.0, 1.0, 3), std::invalid_argument);
}

TEST(RegretTracker, AccumulatesDifferences) {
  RegretTracker tracker;
  tracker.record(0.5, 1.0);
  tracker.record(1.0, 1.0);
  tracker.record(0.0, 1.0);
  EXPECT_EQ(tracker.rounds(), 3);
  EXPECT_DOUBLE_EQ(tracker.policy_total(), 1.5);
  EXPECT_DOUBLE_EQ(tracker.best_fixed_total(), 3.0);
  EXPECT_DOUBLE_EQ(tracker.cumulative_regret(), 1.5);
  ASSERT_EQ(tracker.trajectory().size(), 3u);
  EXPECT_DOUBLE_EQ(tracker.trajectory()[0], 0.5);
  EXPECT_DOUBLE_EQ(tracker.trajectory()[1], 0.5);
  EXPECT_DOUBLE_EQ(tracker.trajectory()[2], 1.5);
}

TEST(RegretTracker, NegativeRegretAllowed) {
  RegretTracker tracker;
  tracker.record(2.0, 1.0);
  EXPECT_DOUBLE_EQ(tracker.cumulative_regret(), -1.0);
}

// Property sweep: on random Bernoulli instances with a clear gap, SE ends
// with the best arm active and among the best empirical means.
class SeSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SeSweep, KeepsBestArmActive) {
  util::Rng setup(GetParam());
  const int k = static_cast<int>(setup.uniform_int(2, 6));
  std::vector<double> means;
  int best = 0;
  for (int a = 0; a < k; ++a) {
    means.push_back(setup.uniform(0.1, 0.5));
  }
  // Give one arm a clear margin.
  best = static_cast<int>(setup.uniform_int(0, k - 1));
  means[static_cast<std::size_t>(best)] = 0.9;

  BernoulliEnv env{means, util::Rng(GetParam() + 100)};
  SuccessiveElimination se(k, 1.0);
  run_policy(se, env, 5000);
  EXPECT_TRUE(se.is_active(best));
  EXPECT_EQ(se.best_active_arm(), best);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeSweep, ::testing::Range(1u, 13u));

}  // namespace
}  // namespace mecar::bandit
