// Tests for the detailed metrics layer: Jain index, latency percentiles,
// utilization accounting, and service-ratio fairness.
#include <gtest/gtest.h>

#include "mec/workload.h"
#include "sim/dynamic_rr.h"
#include "sim/metrics.h"
#include "sim/online_baselines.h"
#include "util/rng.h"

namespace mecar::sim {
namespace {

TEST(JainIndex, PerfectFairnessIsOne) {
  const std::vector<double> equal{2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(jain_index(equal), 1.0);
}

TEST(JainIndex, SingleUserDominanceApproachesOneOverN) {
  const std::vector<double> skewed{10.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(jain_index(skewed), 0.25, 1e-12);
}

TEST(JainIndex, KnownMixedValue) {
  const std::vector<double> v{1.0, 3.0};  // (4)^2 / (2 * 10) = 0.8
  EXPECT_DOUBLE_EQ(jain_index(v), 0.8);
}

TEST(JainIndex, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
}

TEST(Summarize, EmptyMetricsDegradeGracefully) {
  OnlineMetrics metrics;
  const auto s = summarize(metrics);
  EXPECT_DOUBLE_EQ(s.latency_p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.service_fairness, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_utilization, 0.0);
}

TEST(Summarize, PercentilesFromLatencySamples) {
  OnlineMetrics metrics;
  for (int i = 1; i <= 100; ++i) {
    metrics.completed_latencies_ms.push_back(static_cast<double>(i));
  }
  const auto s = summarize(metrics);
  EXPECT_NEAR(s.latency_p50_ms, 50.5, 0.01);
  EXPECT_NEAR(s.latency_p95_ms, 95.05, 0.1);
  EXPECT_DOUBLE_EQ(s.latency_max_ms, 100.0);
}

TEST(DetailCollection, EndToEndSeriesAreConsistent) {
  util::Rng rng(11);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 120;
  wparams.horizon_slots = 300;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);
  OnlineParams params;
  params.horizon_slots = 300;
  params.collect_detail = true;

  HeuKktOnlinePolicy policy(topo, core::AlgorithmParams{});
  OnlineSimulator sim(topo, requests, realized, params);
  const auto m = sim.run(policy);

  EXPECT_EQ(static_cast<int>(m.completed_latencies_ms.size()), m.completed);
  EXPECT_EQ(m.per_slot_utilization.size(), 300u);
  for (double u : m.per_slot_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  // Completed requests have service ratio ~1; ratios never exceed 1.
  for (double r : m.service_ratios) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0 + 1e-6);
  }
  const auto s = summarize(m);
  EXPECT_GT(s.mean_utilization, 0.0);
  EXPECT_GE(s.peak_utilization, s.mean_utilization);
  EXPECT_LE(s.latency_p50_ms, s.latency_p95_ms);
  EXPECT_LE(s.latency_p95_ms, s.latency_max_ms);
  EXPECT_GT(s.service_fairness, 0.0);
  EXPECT_LE(s.service_fairness, 1.0);
}

TEST(DetailCollection, OffByDefault) {
  util::Rng rng(13);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 30;
  wparams.horizon_slots = 100;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = core::realize_demand_levels(requests, rng);
  OnlineParams params;
  params.horizon_slots = 100;
  GreedyOnlinePolicy policy(topo, core::AlgorithmParams{});
  OnlineSimulator sim(topo, requests, realized, params);
  const auto m = sim.run(policy);
  EXPECT_TRUE(m.per_slot_utilization.empty());
  EXPECT_TRUE(m.completed_latencies_ms.empty());
  EXPECT_TRUE(m.service_ratios.empty());
}

}  // namespace
}  // namespace mecar::sim
