// Tests for the MEC substrate: topology construction and generation,
// shortest paths, request distributions, pipeline latency, workloads.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "mec/request.h"
#include "mec/topology.h"
#include "mec/workload.h"
#include "util/rng.h"

namespace mecar::mec {
namespace {

Topology line_topology() {
  // 0 --1ms-- 1 --2ms-- 2, capacities 3000/3200/3400.
  std::vector<BaseStation> stations{
      {0, 3000.0, 1.0, 0.0, 0.0},
      {1, 3200.0, 2.0, 0.5, 0.0},
      {2, 3400.0, 3.0, 1.0, 0.0},
  };
  std::vector<Link> links{{0, 1, 1.0}, {1, 2, 2.0}};
  return Topology(std::move(stations), std::move(links));
}

TEST(Topology, ShortestPathsOnLine) {
  const Topology topo = line_topology();
  EXPECT_DOUBLE_EQ(topo.transmission_delay_ms(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(topo.transmission_delay_ms(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(topo.transmission_delay_ms(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(topo.transmission_delay_ms(2, 0), 3.0);
  EXPECT_TRUE(topo.connected());
}

TEST(Topology, ShortcutBeatsLongPath) {
  std::vector<BaseStation> stations{
      {0, 3000.0, 1.0, 0.0, 0.0},
      {1, 3000.0, 1.0, 0.5, 0.0},
      {2, 3000.0, 1.0, 1.0, 0.0},
  };
  std::vector<Link> links{{0, 1, 5.0}, {1, 2, 5.0}, {0, 2, 3.0}};
  const Topology topo(std::move(stations), std::move(links));
  EXPECT_DOUBLE_EQ(topo.transmission_delay_ms(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(topo.transmission_delay_ms(0, 1), 5.0);
}

TEST(Topology, DisconnectedReportsInfinity) {
  std::vector<BaseStation> stations{
      {0, 3000.0, 1.0, 0.0, 0.0},
      {1, 3000.0, 1.0, 1.0, 0.0},
  };
  const Topology topo(std::move(stations), {});
  EXPECT_FALSE(topo.connected());
  EXPECT_TRUE(std::isinf(topo.transmission_delay_ms(0, 1)));
}

TEST(Topology, ValidationRejectsBadInput) {
  std::vector<BaseStation> ok{{0, 3000.0, 1.0, 0.0, 0.0}};
  EXPECT_THROW(Topology({}, {}), std::invalid_argument);
  std::vector<BaseStation> bad_id{{1, 3000.0, 1.0, 0.0, 0.0}};
  EXPECT_THROW(Topology(std::move(bad_id), {}), std::invalid_argument);
  std::vector<BaseStation> bad_cap{{0, 0.0, 1.0, 0.0, 0.0}};
  EXPECT_THROW(Topology(std::move(bad_cap), {}), std::invalid_argument);
  std::vector<BaseStation> two{{0, 1.0, 1.0, 0.0, 0.0},
                               {1, 1.0, 1.0, 0.0, 0.0}};
  EXPECT_THROW(Topology(two, {{0, 5, 1.0}}), std::invalid_argument);
  EXPECT_THROW(Topology(two, {{0, 0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(Topology(two, {{0, 1, -1.0}}), std::invalid_argument);
}

TEST(Topology, StationsByDistanceStartsWithSelf) {
  const Topology topo = line_topology();
  const auto order = topo.stations_by_distance(1);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 0);  // 1ms beats 2ms
  EXPECT_EQ(order[2], 2);
}

TEST(Topology, TotalCapacitySumsStations) {
  EXPECT_DOUBLE_EQ(line_topology().total_capacity_mhz(), 9600.0);
}

TEST(Topology, DelayQueriesValidateIds) {
  const Topology topo = line_topology();
  EXPECT_THROW(topo.transmission_delay_ms(-1, 0), std::out_of_range);
  EXPECT_THROW(topo.transmission_delay_ms(0, 3), std::out_of_range);
}

class GeneratorSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(GeneratorSeeds, GeneratedTopologyIsConnectedAndInRange) {
  util::Rng rng(GetParam());
  TopologyParams params;
  params.num_stations = 20;
  const Topology topo = generate_topology(params, rng);
  EXPECT_EQ(topo.num_stations(), 20);
  EXPECT_TRUE(topo.connected());
  for (const BaseStation& bs : topo.stations()) {
    EXPECT_GE(bs.capacity_mhz, params.capacity_min_mhz);
    EXPECT_LE(bs.capacity_mhz, params.capacity_max_mhz);
    EXPECT_GE(bs.proc_ms_per_unit, params.proc_ms_min);
    EXPECT_LE(bs.proc_ms_per_unit, params.proc_ms_max);
  }
  for (const Link& link : topo.links()) {
    EXPECT_GE(link.delay_ms, params.link_delay_min_ms);
    EXPECT_LE(link.delay_ms, params.link_delay_max_ms);
  }
}

TEST_P(GeneratorSeeds, GeneratedWorkloadMatchesSectionVIA) {
  util::Rng rng(100 + GetParam());
  TopologyParams tparams;
  const Topology topo = generate_topology(tparams, rng);
  WorkloadParams wparams;
  wparams.num_requests = 60;
  const auto requests = generate_requests(wparams, topo, rng);
  ASSERT_EQ(requests.size(), 60u);
  for (const ARRequest& req : requests) {
    EXPECT_GE(req.home_station, 0);
    EXPECT_LT(req.home_station, topo.num_stations());
    EXPECT_GE(static_cast<int>(req.tasks.size()), wparams.tasks_min);
    EXPECT_LE(static_cast<int>(req.tasks.size()), wparams.tasks_max);
    EXPECT_DOUBLE_EQ(req.latency_budget_ms, 200.0);
    EXPECT_EQ(static_cast<int>(req.demand.size()), wparams.num_rate_levels);
    // Rates within (jittered) section VI-A support and increasing.
    double prob = 0.0;
    double prev = 0.0;
    for (const RateLevel& lvl : req.demand.levels()) {
      EXPECT_GT(lvl.rate, prev);
      EXPECT_GE(lvl.rate, wparams.rate_min - 2.0);
      EXPECT_LE(lvl.rate, wparams.rate_max + 2.0);
      // Independent reward model: reward = unit * volume with
      // unit in [12, 15] and volume in the rate support.
      EXPECT_GE(lvl.reward,
                wparams.rate_min * wparams.reward_per_unit_min - 1e-9);
      EXPECT_LE(lvl.reward,
                wparams.rate_max * wparams.reward_per_unit_max + 1e-9);
      prev = lvl.rate;
      prob += lvl.prob;
    }
    EXPECT_NEAR(prob, 1.0, 1e-9);
  }
}

TEST_P(GeneratorSeeds, SmallRatesAreMoreLikely) {
  util::Rng rng(200 + GetParam());
  const Topology topo = generate_topology(TopologyParams{}, rng);
  WorkloadParams wparams;
  wparams.num_requests = 50;
  const auto requests = generate_requests(wparams, topo, rng);
  double low = 0.0, high = 0.0;
  for (const ARRequest& req : requests) {
    low += req.demand.levels().front().prob;
    high += req.demand.levels().back().prob;
  }
  EXPECT_GT(low, high);  // skewed toward small rates on aggregate
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeeds, ::testing::Range(1u, 9u));

TEST(RateRewardDist, MomentsOfKnownDistribution) {
  RateRewardDist dist({{30.0, 0.5, 300.0}, {50.0, 0.5, 700.0}});
  EXPECT_DOUBLE_EQ(dist.expected_rate(), 40.0);
  EXPECT_DOUBLE_EQ(dist.expected_reward(), 500.0);
  EXPECT_DOUBLE_EQ(dist.min_rate(), 30.0);
  EXPECT_DOUBLE_EQ(dist.max_rate(), 50.0);
}

TEST(RateRewardDist, TruncatedExpectation) {
  RateRewardDist dist({{30.0, 0.5, 300.0}, {50.0, 0.5, 700.0}});
  EXPECT_DOUBLE_EQ(dist.expected_truncated_rate(40.0), 35.0);
  EXPECT_DOUBLE_EQ(dist.expected_truncated_rate(100.0), 40.0);
  EXPECT_DOUBLE_EQ(dist.expected_truncated_rate(0.0), 0.0);
}

TEST(RateRewardDist, RewardWithinCapImplementsEq8) {
  RateRewardDist dist({{30.0, 0.5, 300.0}, {50.0, 0.5, 700.0}});
  EXPECT_DOUBLE_EQ(dist.expected_reward_within(29.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.expected_reward_within(30.0), 150.0);
  EXPECT_DOUBLE_EQ(dist.expected_reward_within(50.0), 500.0);
}

TEST(RateRewardDist, SampleFollowsProbabilities) {
  RateRewardDist dist({{30.0, 0.25, 300.0}, {50.0, 0.75, 700.0}});
  util::Rng rng(5);
  int high = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) high += (dist.sample(rng) == 1);
  EXPECT_NEAR(static_cast<double>(high) / n, 0.75, 0.02);
}

TEST(RateRewardDist, ValidatesInput) {
  EXPECT_THROW(RateRewardDist(std::vector<RateLevel>{}),
               std::invalid_argument);
  EXPECT_THROW(RateRewardDist({{30.0, 0.5, 1.0}, {30.0, 0.5, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(RateRewardDist({{30.0, 0.5, 1.0}, {50.0, 0.2, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(RateRewardDist({{30.0, 1.0, -1.0}}), std::invalid_argument);
  EXPECT_THROW(RateRewardDist({{30.0, 1.5, 1.0}}), std::invalid_argument);
}

TEST(RateRewardDist, DefaultIsDegenerate) {
  const RateRewardDist dist;
  EXPECT_EQ(dist.size(), 1u);
  EXPECT_DOUBLE_EQ(dist.expected_rate(), 0.0);
  EXPECT_DOUBLE_EQ(dist.expected_reward(), 0.0);
}

TEST(ARPipeline, TemplateMatchesBraudTrace) {
  const auto tasks = ar_pipeline(4);
  ASSERT_EQ(tasks.size(), 4u);
  EXPECT_EQ(tasks[3].name, "render_objects");
  EXPECT_DOUBLE_EQ(tasks[3].output_kb, 100.0);  // render object 100 Kb
  EXPECT_DOUBLE_EQ(tasks[0].output_kb, 64.0);
  // Rendering is the most computing-intensive task.
  for (std::size_t k = 0; k + 1 < tasks.size(); ++k) {
    EXPECT_LE(tasks[k].proc_weight, tasks[3].proc_weight);
  }
}

TEST(ARPipeline, CyclicExtension) {
  const auto tasks = ar_pipeline(6);
  ASSERT_EQ(tasks.size(), 6u);
  EXPECT_EQ(tasks[4].name, tasks[0].name);
  EXPECT_THROW(ar_pipeline(0), std::invalid_argument);
}

TEST(PlacementLatency, HomeStationSkipsTransmission) {
  const Topology topo = line_topology();
  ARRequest req;
  req.home_station = 0;
  req.tasks = ar_pipeline(4);  // total weight 0.8+0.6+1.0+1.6 = 4.0
  EXPECT_DOUBLE_EQ(placement_latency_ms(topo, req, 0), 4.0 * 1.0);
  // Station 1: 2*1ms transit + 4.0 * 2ms processing.
  EXPECT_DOUBLE_EQ(placement_latency_ms(topo, req, 1), 2.0 + 8.0);
  // Station 2: 2*3ms + 4.0*3ms.
  EXPECT_DOUBLE_EQ(placement_latency_ms(topo, req, 2), 6.0 + 12.0);
}

TEST(PlacementLatency, SplitPlacementChainsHops) {
  const Topology topo = line_topology();
  ARRequest req;
  req.home_station = 0;
  req.tasks = ar_pipeline(3);  // weights 0.8, 0.6, 1.0
  // All tasks at home: same as consolidated placement.
  EXPECT_DOUBLE_EQ(split_placement_latency_ms(topo, req, {0, 0, 0}),
                   placement_latency_ms(topo, req, 0));
  // Last task moved to station 1: pay 0->1 hop and the return hop.
  const double split = split_placement_latency_ms(topo, req, {0, 0, 1});
  EXPECT_DOUBLE_EQ(split, 0.8 * 1.0 + 0.6 * 1.0 + 1.0 + 1.0 * 2.0 + 1.0);
  EXPECT_THROW(split_placement_latency_ms(topo, req, {0, 0}),
               std::invalid_argument);
}

TEST(Workload, OfflineRequestsArriveAtSlotZero) {
  util::Rng rng(3);
  const Topology topo = generate_topology(TopologyParams{}, rng);
  WorkloadParams params;
  params.num_requests = 20;
  params.horizon_slots = 0;
  for (const auto& req : generate_requests(params, topo, rng)) {
    EXPECT_EQ(req.arrival_slot, 0);
    EXPECT_GE(req.duration_slots, params.duration_min_slots);
    EXPECT_LE(req.duration_slots, params.duration_max_slots);
  }
}

TEST(Workload, OnlineArrivalsAreSortedWithinHorizon) {
  util::Rng rng(4);
  const Topology topo = generate_topology(TopologyParams{}, rng);
  WorkloadParams params;
  params.num_requests = 50;
  params.horizon_slots = 100;
  const auto requests = generate_requests(params, topo, rng);
  int prev = 0;
  std::set<int> distinct;
  for (const auto& req : requests) {
    EXPECT_GE(req.arrival_slot, prev);
    EXPECT_LT(req.arrival_slot, 100);
    prev = req.arrival_slot;
    distinct.insert(req.arrival_slot);
  }
  EXPECT_GT(distinct.size(), 5u);  // genuinely spread over the horizon
}

TEST(Workload, ValidatesParameters) {
  util::Rng rng(5);
  const Topology topo = line_topology();
  WorkloadParams params;
  params.num_requests = -1;
  EXPECT_THROW(generate_requests(params, topo, rng), std::invalid_argument);
  params = {};
  params.num_rate_levels = 0;
  EXPECT_THROW(generate_requests(params, topo, rng), std::invalid_argument);
  params = {};
  params.rate_min = 50;
  params.rate_max = 30;
  EXPECT_THROW(generate_requests(params, topo, rng), std::invalid_argument);
  params = {};
  params.tasks_min = 0;
  EXPECT_THROW(generate_requests(params, topo, rng), std::invalid_argument);
  params = {};
  params.rate_prob_skew = 0.0;
  EXPECT_THROW(generate_requests(params, topo, rng), std::invalid_argument);
}

TEST(Workload, GeneratorRejectsBadTopologyParams) {
  util::Rng rng(6);
  TopologyParams params;
  params.num_stations = 0;
  EXPECT_THROW(generate_topology(params, rng), std::invalid_argument);
}

TEST(Workload, SingleRateLevelIsDegenerate) {
  util::Rng rng(7);
  const Topology topo = line_topology();
  WorkloadParams params;
  params.num_requests = 5;
  params.num_rate_levels = 1;
  for (const auto& req : generate_requests(params, topo, rng)) {
    ASSERT_EQ(req.demand.size(), 1u);
    EXPECT_NEAR(req.demand.level(0).prob, 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace mecar::mec
