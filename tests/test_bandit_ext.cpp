// Tests for the bandit extensions: Thompson sampling (Gaussian posterior)
// and the zooming algorithm for Lipschitz bandits, plus their integration
// as DynamicRR threshold learners.
#include <gtest/gtest.h>

#include <cmath>

#include "bandit/thompson.h"
#include "bandit/zooming.h"
#include "util/rng.h"

namespace mecar::bandit {
namespace {

TEST(Thompson, Validates) {
  EXPECT_THROW(ThompsonSampling(0, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(ThompsonSampling(2, util::Rng(1), 0.0), std::invalid_argument);
  EXPECT_THROW(ThompsonSampling(2, util::Rng(1), 1.0, 0.0, -1.0),
               std::invalid_argument);
  ThompsonSampling ts(2, util::Rng(1));
  EXPECT_THROW(ts.update(7, 0.0), std::out_of_range);
}

TEST(Thompson, PosteriorConcentratesOnTrueMean) {
  ThompsonSampling ts(1, util::Rng(3), 0.25, 0.0, 1.0);
  for (int i = 0; i < 400; ++i) ts.update(0, 0.7);
  EXPECT_NEAR(ts.posterior_mean(0), 0.7, 0.02);
  EXPECT_LT(ts.posterior_std(0), 0.05);
  EXPECT_NEAR(ts.mean(0), 0.7, 1e-9);
}

TEST(Thompson, FindsBestBernoulliArm) {
  util::Rng env_rng(5);
  ThompsonSampling ts(3, util::Rng(6), 0.5, 0.5, 1.0);
  const double means[3] = {0.2, 0.8, 0.4};
  int plays[3] = {0, 0, 0};
  for (int t = 0; t < 3000; ++t) {
    const int arm = ts.select_arm();
    ++plays[arm];
    ts.update(arm, env_rng.bernoulli(means[arm]) ? 1.0 : 0.0);
  }
  EXPECT_GT(plays[1], plays[0]);
  EXPECT_GT(plays[1], plays[2]);
  EXPECT_GT(plays[1], 2000);  // exploitation dominates
}

TEST(Thompson, RoundsCountPulls) {
  ThompsonSampling ts(2, util::Rng(7));
  EXPECT_EQ(ts.rounds(), 0);
  ts.update(0, 0.5);
  ts.update(1, 0.5);
  EXPECT_EQ(ts.rounds(), 2);
}

TEST(Zooming, Validates) {
  EXPECT_THROW(ZoomingBandit(1.0, 0.0, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(ZoomingBandit(0.0, 1.0, util::Rng(1), 0.0),
               std::invalid_argument);
  ZoomingBandit z(0.0, 1.0, util::Rng(1));
  EXPECT_THROW(z.update(0.5), std::logic_error);
}

TEST(Zooming, StartsAtMidpointAndGrows) {
  ZoomingBandit z(0.0, 10.0, util::Rng(3));
  EXPECT_EQ(z.num_active_points(), 1);
  const double first = z.select_point();
  EXPECT_DOUBLE_EQ(first, 5.0);
  z.update(0.3);
  // As confidence shrinks, new points get activated to cover the interval.
  for (int t = 0; t < 400; ++t) {
    (void)z.select_point();
    z.update(0.3);
  }
  EXPECT_GT(z.num_active_points(), 1);
}

TEST(Zooming, PointsStayInInterval) {
  ZoomingBandit z(2.0, 8.0, util::Rng(5));
  util::Rng env(6);
  for (int t = 0; t < 500; ++t) {
    const double x = z.select_point();
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 8.0);
    z.update(env.uniform());
  }
  for (const auto& p : z.points()) {
    EXPECT_GE(p.value, 2.0);
    EXPECT_LE(p.value, 8.0);
  }
}

TEST(Zooming, ZoomsTowardTheOptimum) {
  // Reward peaks at x* = 7 (triangular, Lipschitz); zooming should place
  // most pulls near the peak and report a best point close to it.
  ZoomingBandit z(0.0, 10.0, util::Rng(7), 0.5);
  util::Rng env(8);
  auto reward = [&](double x) {
    const double base = 1.0 - 0.12 * std::abs(x - 7.0);
    return base + env.uniform(-0.05, 0.05);
  };
  for (int t = 0; t < 4000; ++t) {
    const double x = z.select_point();
    z.update(reward(x));
  }
  EXPECT_NEAR(z.best_point(), 7.0, 1.5);
  // Pull mass concentrates near the optimum.
  int near = 0, far = 0;
  for (const auto& p : z.points()) {
    (std::abs(p.value - 7.0) < 2.0 ? near : far) += p.pulls;
  }
  EXPECT_GT(near, far);
}

TEST(Zooming, AdaptiveCoverageActivatesMultiplePoints) {
  ZoomingBandit z(0.0, 1.0, util::Rng(9), 0.05);  // small radius
  util::Rng env(10);
  for (int t = 0; t < 300; ++t) {
    (void)z.select_point();
    z.update(env.uniform());
  }
  EXPECT_GT(z.num_active_points(), 3);
}

}  // namespace
}  // namespace mecar::bandit
