#!/usr/bin/env sh
# Kill-and-resume bit-identity: every golden scenario runs through the
# serial checkpointed path three ways — uninterrupted, killed mid-run by
# an injected SIGKILL, and resumed from the surviving checkpoint
# generation — and the resumed stdout must equal the uninterrupted one
# byte for byte. Wall-clock runtime_ms tables are filtered on both sides;
# everything else (rewards, latencies, regret series, resilience columns)
# must reproduce exactly. The legacy-loop sweep also cross-checks the
# serial checkpointed path against the pooled path, the whole sweep
# repeats with the sharded slot loop forced on, and dedicated legs cover
# cross-engine resume (killed legacy, resumed MECAR_SHARDS=8 —
# SimSnapshot is engine-agnostic), a scripted FaultPlan `crash` line that
# dies inside the faulted run (stage-2 resume with the cached reference
# metrics), and a corrupted newest generation recovered from the previous
# one.
#
#   tests/check_resume.sh [BUILD_DIR]   (default: build)
set -u
build=${1:-build}
root=$(cd "$(dirname "$0")/.." && pwd)
cli=$build/tools/mecar_cli
fail=0
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

if [ ! -x "$cli" ]; then
  echo "MISSING BINARY: $cli is absent or not executable" >&2
  echo "  (build it first: cmake --build $build --target mecar_cli)" >&2
  exit 1
fi

# Wall-clock solver runtimes can never be deterministic across runs; drop
# that one table (title through trailing blank line) on both sides.
filter() {
  awk '/: runtime_ms/{skip=1; next} skip && /^$/{skip=0; next} !skip' "$1"
}

# Run $cli under the engine selection in $1 ("" = leave MECAR_SHARDS
# alone, i.e. the legacy slot loop; N = force the sharded loop).
engine_run() {
  _shards=$1
  shift
  if [ -n "$_shards" ]; then
    MECAR_SHARDS=$_shards "$cli" "$@"
  else
    "$cli" "$@"
  fi
}

crash_flag() {
  case "$1" in
    # fig3_offline has horizon 0 (no slots to crash in); kill between
    # checkpoint units instead.
    fig3_offline) echo "--crash-after-units=2" ;;
    *) echo "--crash-at=150" ;;
  esac
}

mismatch() {
  echo "MISMATCH: $1" >&2
  filter "$2" >"$work/.a" && filter "$3" >"$work/.b"
  diff "$work/.a" "$work/.b" | head -20 >&2 || true
  fail=1
}

# check_scenario NAME CRASH_SHARDS RESUME_SHARDS
check_scenario() {
  name=$1
  shards=$2
  resume_shards=$3
  tag=$name${shards:+-s$shards}
  [ "$resume_shards" = "$shards" ] || tag=$tag-xr${resume_shards:-legacy}
  spec=$root/scenarios/$name.scenario

  if ! engine_run "$shards" experiment --spec="$spec" \
      --checkpoint-dir="$work/$tag-ref" --checkpoint-every=50 \
      >"$work/$tag.ref" 2>/dev/null; then
    echo "FAIL: $tag reference run" >&2
    fail=1
    return
  fi

  engine_run "$shards" experiment --spec="$spec" \
    --checkpoint-dir="$work/$tag" --checkpoint-every=50 \
    "$(crash_flag "$name")" >/dev/null 2>"$work/$tag.err"
  if [ $? -ne 137 ]; then
    echo "FAIL: $tag crash leg did not die with SIGKILL" >&2
    fail=1
    return
  fi
  if ! grep -q "injected crash" "$work/$tag.err"; then
    echo "FAIL: $tag crash leg missing the injection notice" >&2
    fail=1
    return
  fi

  if ! engine_run "$resume_shards" experiment --spec="$spec" \
      --checkpoint-dir="$work/$tag" --checkpoint-every=50 --resume \
      >"$work/$tag.res" 2>/dev/null; then
    echo "FAIL: $tag resume leg" >&2
    fail=1
    return
  fi
  if [ "$(filter "$work/$tag.ref")" != "$(filter "$work/$tag.res")" ]; then
    mismatch "$tag resumed output differs from uninterrupted" \
      "$work/$tag.ref" "$work/$tag.res"
    return
  fi

  # Legacy-loop pass doubles as the serial-vs-pooled equivalence check.
  if [ -z "$shards" ] && [ -z "$resume_shards" ]; then
    "$cli" experiment --spec="$spec" >"$work/$tag.pooled" 2>/dev/null
    if [ "$(filter "$work/$tag.ref")" != "$(filter "$work/$tag.pooled")" ]; then
      mismatch "$tag serial checkpointed output differs from pooled" \
        "$work/$tag.pooled" "$work/$tag.ref"
      return
    fi
  fi
  echo "ok: $tag"
}

scenarios="fig3_offline fig4_online fig5_stations fig6_rate quality_metrics
regret_growth regret_kappa resilience"

echo "== kill-and-resume, legacy slot loop =="
for name in $scenarios; do check_scenario "$name" "" ""; done

echo "== kill-and-resume, sharded slot loop (MECAR_SHARDS=8) =="
for name in $scenarios; do check_scenario "$name" 8 8; done

echo "== cross-engine resume =="
check_scenario fig4_online "" 8
check_scenario regret_kappa 8 ""

echo "== scripted FaultPlan crash through the faulted run =="
cat >"$work/crash.plan" <<EOF
station_outage 0 80 200
station_outage 1 220 320
crash 150
EOF
sed '/^crash /d' "$work/crash.plan" >"$work/nocrash.plan"
emit_scenario() {
  cat <<EOF
name resume_faulted
kind sweep
axis none
seeds 2
horizon 400
fault_plan $1
policy DynamicRR
metric reward
metric retention
metric drops
EOF
}
emit_scenario "$work/nocrash.plan" >"$work/nocrash.scenario"
emit_scenario "$work/crash.plan" >"$work/crash.scenario"

"$cli" experiment --spec="$work/nocrash.scenario" \
  --checkpoint-dir="$work/faulted-ref" --checkpoint-every=50 \
  >"$work/faulted.ref" 2>/dev/null || { echo "FAIL: faulted reference" >&2; fail=1; }
"$cli" experiment --spec="$work/crash.scenario" \
  --checkpoint-dir="$work/faulted" --checkpoint-every=50 \
  >/dev/null 2>"$work/faulted.err"
if [ $? -ne 137 ] || ! grep -q "injected crash" "$work/faulted.err"; then
  echo "FAIL: scripted plan crash did not SIGKILL the faulted run" >&2
  fail=1
else
  # --resume disarms the scripted crash, so the same crashing spec must
  # now sail past slot 150 and finish.
  if ! "$cli" experiment --spec="$work/crash.scenario" \
      --checkpoint-dir="$work/faulted" --checkpoint-every=50 --resume \
      >"$work/faulted.res" 2>/dev/null; then
    echo "FAIL: faulted resume leg" >&2
    fail=1
  elif [ "$(filter "$work/faulted.ref")" != "$(filter "$work/faulted.res")" ]; then
    mismatch "faulted resume differs from uninterrupted" \
      "$work/faulted.ref" "$work/faulted.res"
  else
    echo "ok: resume_faulted (scripted crash, stage-2 resume)"
  fi
fi

echo "== corrupted newest generation falls back =="
"$cli" experiment --spec="$root/scenarios/fig4_online.scenario" \
  --checkpoint-dir="$work/corrupt" --checkpoint-every=50 --crash-at=150 \
  >/dev/null 2>&1
newest=$work/corrupt/$(ls "$work/corrupt" | sort -t- -k2 -n | tail -1)
# Chop the tail off the newest generation: the frame-length check must
# reject it and recovery must fall to the previous one.
size=$(wc -c <"$newest")
head -c "$((size - 7))" "$newest" >"$newest.tmp" && mv "$newest.tmp" "$newest"
if ! "$cli" experiment --spec="$root/scenarios/fig4_online.scenario" \
    --checkpoint-dir="$work/corrupt" --checkpoint-every=50 --resume \
    >"$work/corrupt.res" 2>"$work/corrupt.err"; then
  echo "FAIL: corrupted-generation resume leg" >&2
  fail=1
elif ! grep -q "falling back to the previous generation" "$work/corrupt.err"; then
  echo "FAIL: corrupted generation was not diagnosed" >&2
  fail=1
elif [ "$(filter "$work/fig4_online.ref")" != "$(filter "$work/corrupt.res")" ]; then
  mismatch "fallback resume differs from uninterrupted" \
    "$work/fig4_online.ref" "$work/corrupt.res"
else
  echo "ok: corrupted generation recovered from the previous one"
fi

exit $fail
