// DynamicRR learner-matrix tests: every ThresholdLearner variant drives a
// full simulation, keeps the threshold legal, and lands within a sane band
// of the successive-elimination reference.
#include <gtest/gtest.h>

#include "mec/workload.h"
#include "sim/dynamic_rr.h"
#include "sim/online_sim.h"
#include "util/rng.h"

namespace mecar::sim {
namespace {

struct Env {
  mec::Topology topo;
  std::vector<mec::ARRequest> requests;
  std::vector<std::size_t> realized;
  OnlineParams params;
};

Env make_env(unsigned seed) {
  util::Rng rng(seed);
  mec::TopologyParams tparams;
  tparams.num_stations = 12;
  mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 180;
  wparams.horizon_slots = 400;
  auto requests = mec::generate_requests(wparams, topo, rng);
  auto realized = core::realize_demand_levels(requests, rng);
  OnlineParams params;
  params.horizon_slots = 400;
  return {std::move(topo), std::move(requests), std::move(realized), params};
}

class LearnerMatrix : public ::testing::TestWithParam<ThresholdLearner> {};

TEST_P(LearnerMatrix, RunsAndKeepsThresholdInRange) {
  const Env setup = make_env(71);
  DynamicRrParams dparams;
  dparams.learner = GetParam();
  DynamicRrPolicy policy(setup.topo, core::AlgorithmParams{}, dparams,
                         util::Rng(72));
  OnlineSimulator sim(setup.topo, setup.requests, setup.realized,
                      setup.params);
  const auto m = sim.run(policy);
  EXPECT_GT(m.total_reward, 0.0);
  EXPECT_EQ(m.completed + m.dropped + m.unfinished, m.arrived);
  EXPECT_GE(policy.last_threshold_mhz(),
            dparams.threshold_min_mhz - 1e-9);
  EXPECT_LE(policy.last_threshold_mhz(),
            dparams.threshold_max_mhz + 1e-9);
}

TEST_P(LearnerMatrix, StaysWithinBandOfSuccessiveElimination) {
  const Env setup = make_env(73);
  auto run = [&](ThresholdLearner learner) {
    DynamicRrParams dparams;
    dparams.learner = learner;
    DynamicRrPolicy policy(setup.topo, core::AlgorithmParams{}, dparams,
                           util::Rng(74));
    OnlineSimulator sim(setup.topo, setup.requests, setup.realized,
                        setup.params);
    return sim.run(policy).total_reward;
  };
  const double reference = run(ThresholdLearner::kSuccessiveElimination);
  const double variant = run(GetParam());
  EXPECT_GT(variant, 0.6 * reference);
  EXPECT_LT(variant, 1.4 * reference);
}

INSTANTIATE_TEST_SUITE_P(
    AllLearners, LearnerMatrix,
    ::testing::Values(ThresholdLearner::kSuccessiveElimination,
                      ThresholdLearner::kUcb1,
                      ThresholdLearner::kEpsilonGreedy,
                      ThresholdLearner::kThompson,
                      ThresholdLearner::kZooming));

TEST(LearnerIntrospection, BanditAccessorGuardsType) {
  const Env setup = make_env(75);
  DynamicRrParams se_params;
  DynamicRrPolicy se_policy(setup.topo, core::AlgorithmParams{}, se_params,
                            util::Rng(76));
  EXPECT_NO_THROW(se_policy.bandit());

  DynamicRrParams ucb_params;
  ucb_params.learner = ThresholdLearner::kUcb1;
  DynamicRrPolicy ucb_policy(setup.topo, core::AlgorithmParams{}, ucb_params,
                             util::Rng(77));
  EXPECT_THROW(ucb_policy.bandit(), std::logic_error);
}

}  // namespace
}  // namespace mecar::sim
