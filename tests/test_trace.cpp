// Tests for the frame-level trace module: synthesis matches the Braud et
// al. [5] aggregates, CSV round-trips, windowed rate extraction, and demand
// estimation produces valid distributions.
#include <gtest/gtest.h>

#include <sstream>

#include "mec/trace.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mecar::mec {
namespace {

TEST(FrameTrace, BasicAggregates) {
  FrameTrace trace({{0.0, 512.0}, {500.0, 512.0}, {1000.0, 1024.0}});
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.duration_ms(), 1000.0);
  EXPECT_DOUBLE_EQ(trace.total_mb(), 2.0);
  EXPECT_DOUBLE_EQ(trace.average_rate_mbps(), 2.0);
}

TEST(FrameTrace, DegenerateTraces) {
  const FrameTrace empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.duration_ms(), 0.0);
  EXPECT_DOUBLE_EQ(empty.average_rate_mbps(), 0.0);
  const FrameTrace one({{10.0, 64.0}});
  EXPECT_DOUBLE_EQ(one.duration_ms(), 0.0);
}

TEST(FrameTrace, ValidatesMonotonicityAndSizes) {
  EXPECT_THROW(FrameTrace({{10.0, 64.0}, {5.0, 64.0}}),
               std::invalid_argument);
  EXPECT_THROW(FrameTrace({{0.0, -1.0}}), std::invalid_argument);
}

TEST(FrameTrace, CsvRoundTrip) {
  FrameTrace trace({{0.0, 64.0}, {11.1, 66.5}, {22.2, 63.0}});
  std::stringstream ss;
  trace.write_csv(ss);
  const FrameTrace back = FrameTrace::read_csv(ss);
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_NEAR(back.frames()[i].timestamp_ms,
                trace.frames()[i].timestamp_ms, 1e-9);
    EXPECT_NEAR(back.frames()[i].size_kb, trace.frames()[i].size_kb, 1e-9);
  }
}

TEST(FrameTrace, CsvRejectsMalformedRows) {
  std::stringstream ss("timestamp_ms,size_kb\nnot-a-number,64\n");
  EXPECT_THROW(FrameTrace::read_csv(ss), std::invalid_argument);
  std::stringstream ss2("0.0;64.0\n");
  EXPECT_THROW(FrameTrace::read_csv(ss2), std::invalid_argument);
}

TEST(FrameTrace, CsvParseErrorsCarryLineNumbersAndFieldNames) {
  const auto failure = [](const std::string& text) {
    std::stringstream ss(text);
    try {
      FrameTrace::read_csv(ss);
    } catch (const TraceParseError& e) {
      return std::make_pair(e.line(), std::string(e.what()));
    }
    return std::make_pair(-1, std::string());
  };
  {
    // The bad row is named by its 1-based line number (header included).
    const auto [line, what] =
        failure("timestamp_ms,size_kb\n0.0,64\n5.0,junk\n");
    EXPECT_EQ(line, 3);
    EXPECT_NE(what.find("FrameTrace: line 3"), std::string::npos);
    EXPECT_NE(what.find("size_kb"), std::string::npos);
    EXPECT_NE(what.find("junk"), std::string::npos);
  }
  {
    // Trailing junk on a numeric field is rejected, not truncated.
    const auto [line, what] = failure("0.0x,64\n");
    EXPECT_EQ(line, 1);
    EXPECT_NE(what.find("timestamp_ms"), std::string::npos);
  }
  {
    const auto [line, what] = failure("0.0,64\n1.0,64,99\n");
    EXPECT_EQ(line, 2);
    EXPECT_NE(what.find("2 fields"), std::string::npos);
  }
}

TEST(SynthesizeTrace, MatchesBraudAggregates) {
  util::Rng rng(5);
  TraceParams params;  // 64 KB frames at 90-120 fps
  const FrameTrace trace = synthesize_trace(params, rng);
  // Frame count ~ duration * fps.
  const double fps =
      trace.size() / (params.duration_s);
  EXPECT_GE(fps, params.fps_min * 0.9);
  EXPECT_LE(fps, params.fps_max * 1.1);
  // The paper derives 30-50 MB/s streams from these statistics
  // (bursts push the mean above the base 64 KB x ~105 fps ~ 6.6 MB/s x ...).
  const double rate = trace.average_rate_mbps();
  EXPECT_GT(rate, 5.0);
  EXPECT_LT(rate, 15.0);
  // Frame sizes hover around the configured mean.
  util::RunningStats sizes;
  for (const auto& f : trace.frames()) sizes.add(f.size_kb);
  EXPECT_NEAR(sizes.mean(), params.frame_kb_mean, params.frame_kb_mean * 0.3);
}

TEST(SynthesizeTrace, BurstsRaiseRateVariance) {
  util::Rng rng1(7), rng2(7);
  TraceParams quiet;
  quiet.burst_rate_per_s = 0.0;
  TraceParams bursty;
  bursty.burst_rate_per_s = 1.5;
  const auto quiet_rates =
      window_rates_mbps(synthesize_trace(quiet, rng1), 250.0);
  const auto bursty_rates =
      window_rates_mbps(synthesize_trace(bursty, rng2), 250.0);
  util::RunningStats q, b;
  for (double r : quiet_rates) q.add(r);
  for (double r : bursty_rates) b.add(r);
  EXPECT_GT(b.stddev(), q.stddev());
}

TEST(SynthesizeTrace, ValidatesParameters) {
  util::Rng rng(1);
  TraceParams params;
  params.duration_s = 0.0;
  EXPECT_THROW(synthesize_trace(params, rng), std::invalid_argument);
  params = {};
  params.fps_max = 10.0;
  params.fps_min = 20.0;
  EXPECT_THROW(synthesize_trace(params, rng), std::invalid_argument);
}

TEST(WindowRates, ExactOnHandTrace) {
  // 4 frames of 1024 KB at 0/250/500/750 ms: each 500 ms window holds
  // 2 MB -> 4 MB/s.
  FrameTrace trace(
      {{0.0, 1024.0}, {250.0, 1024.0}, {500.0, 1024.0}, {750.0, 1024.0}});
  const auto rates = window_rates_mbps(trace, 500.0);
  ASSERT_EQ(rates.size(), 1u);  // only [0, 500) fits fully before 750
  EXPECT_NEAR(rates[0], 4.0, 1e-9);
}

TEST(WindowRates, Validation) {
  FrameTrace trace({{0.0, 64.0}, {1000.0, 64.0}});
  EXPECT_THROW(window_rates_mbps(trace, 0.0), std::invalid_argument);
  EXPECT_TRUE(window_rates_mbps(trace, 5000.0).empty());
  EXPECT_TRUE(window_rates_mbps(FrameTrace{}, 100.0).empty());
}

TEST(EstimateDemand, ProducesValidDistribution) {
  util::Rng rng(11);
  const FrameTrace trace = synthesize_trace(TraceParams{}, rng);
  EstimateOptions options;
  const RateRewardDist dist = estimate_demand(trace, options, rng);
  EXPECT_GE(dist.size(), 1u);
  EXPECT_LE(static_cast<int>(dist.size()), options.num_levels);
  double prob = 0.0;
  double prev_rate = -1.0;
  for (const RateLevel& lvl : dist.levels()) {
    EXPECT_GT(lvl.rate, prev_rate);
    EXPECT_GE(lvl.reward, 0.0);
    prob += lvl.prob;
    prev_rate = lvl.rate;
  }
  EXPECT_NEAR(prob, 1.0, 1e-9);
  // The estimated mean rate tracks the trace's observed mean.
  const auto rates = window_rates_mbps(trace, options.window_ms);
  util::RunningStats observed;
  for (double r : rates) observed.add(r);
  EXPECT_NEAR(dist.expected_rate(), observed.mean(),
              0.25 * observed.mean() + 0.5);
}

TEST(EstimateDemand, StableTraceCollapsesToOneLevel) {
  std::vector<FrameRecord> frames;
  for (int i = 0; i < 200; ++i) {
    frames.push_back({i * 10.0, 100.0});  // perfectly constant
  }
  util::Rng rng(13);
  const RateRewardDist dist =
      estimate_demand(FrameTrace(std::move(frames)), EstimateOptions{}, rng);
  EXPECT_EQ(dist.size(), 1u);
  EXPECT_NEAR(dist.level(0).prob, 1.0, 1e-12);
}

TEST(EstimateDemand, Validation) {
  util::Rng rng(17);
  EstimateOptions options;
  EXPECT_THROW(estimate_demand(FrameTrace{}, options, rng),
               std::invalid_argument);
  options.num_levels = 0;
  const FrameTrace trace({{0.0, 64.0}, {1000.0, 64.0}});
  EXPECT_THROW(estimate_demand(trace, options, rng), std::invalid_argument);
}

// Property: estimation is consistent — feeding the estimated distribution
// through the pipeline never produces probabilities outside [0,1] or
// non-increasing rates, across many random traces.
class EstimateSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(EstimateSweep, AlwaysValid) {
  util::Rng rng(GetParam());
  TraceParams params;
  params.duration_s = rng.uniform(2.0, 8.0);
  params.burst_rate_per_s = rng.uniform(0.0, 2.0);
  const FrameTrace trace = synthesize_trace(params, rng);
  EstimateOptions options;
  options.num_levels = static_cast<int>(rng.uniform_int(1, 8));
  options.window_ms = rng.uniform(100.0, 1000.0);
  const RateRewardDist dist = estimate_demand(trace, options, rng);
  double prob = 0.0;
  for (const RateLevel& lvl : dist.levels()) prob += lvl.prob;
  EXPECT_NEAR(prob, 1.0, 1e-9);
  EXPECT_GT(dist.expected_rate(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimateSweep, ::testing::Range(1u, 13u));

}  // namespace
}  // namespace mecar::mec
