// Tests for the solution validator: clean solutions from every algorithm
// pass; hand-corrupted solutions trip exactly the right checks.
#include <gtest/gtest.h>

#include "baselines/greedy.h"
#include "baselines/heu_kkt.h"
#include "baselines/ocorp.h"
#include "core/appro.h"
#include "core/heu.h"
#include "core/validate.h"
#include "mec/workload.h"
#include "util/rng.h"

namespace mecar::core {
namespace {

struct Instance {
  mec::Topology topo;
  std::vector<mec::ARRequest> requests;
  std::vector<std::size_t> realized;
};

Instance make_instance(unsigned seed) {
  util::Rng rng(seed);
  mec::TopologyParams tparams;
  tparams.num_stations = 10;
  mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 60;
  auto requests = mec::generate_requests(wparams, topo, rng);
  auto realized = realize_demand_levels(requests, rng);
  return {std::move(topo), std::move(requests), std::move(realized)};
}

bool has_kind(const std::vector<Violation>& violations,
              Violation::Kind kind) {
  for (const Violation& v : violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

TEST(Validate, AllAlgorithmsProduceCleanSolutions) {
  const Instance inst = make_instance(81);
  const AlgorithmParams params;
  std::vector<std::pair<std::string, OffloadResult>> results;
  {
    util::Rng rng(82);
    results.emplace_back("Appro", run_appro(inst.topo, inst.requests,
                                            inst.realized, params, rng));
  }
  {
    util::Rng rng(82);
    results.emplace_back("Heu", run_heu(inst.topo, inst.requests,
                                        inst.realized, params, rng));
  }
  results.emplace_back("Greedy", baselines::run_greedy(inst.topo,
                                                       inst.requests,
                                                       inst.realized, params));
  results.emplace_back("OCORP", baselines::run_ocorp(inst.topo, inst.requests,
                                                     inst.realized, params));
  results.emplace_back(
      "HeuKKT",
      baselines::run_heu_kkt(inst.topo, inst.requests, inst.realized, params));
  for (const auto& [name, result] : results) {
    const auto violations =
        validate_offload(inst.topo, inst.requests, inst.realized, result);
    EXPECT_TRUE(violations.empty())
        << name << ": " << violations.size() << " violations, first: "
        << (violations.empty() ? "" : violations[0].message);
  }
}

TEST(Validate, DetectsShapeMismatch) {
  const Instance inst = make_instance(83);
  OffloadResult bogus;
  bogus.outcomes.resize(3);
  const auto violations =
      validate_offload(inst.topo, inst.requests, inst.realized, bogus);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, Violation::Kind::kShape);
}

TEST(Validate, DetectsCorruptions) {
  const Instance inst = make_instance(85);
  const AlgorithmParams params;
  util::Rng rng(86);
  const OffloadResult clean =
      run_appro(inst.topo, inst.requests, inst.realized, params, rng);

  // Pick a rewarded outcome to corrupt.
  int idx = -1;
  for (std::size_t j = 0; j < clean.outcomes.size(); ++j) {
    if (clean.outcomes[j].rewarded) {
      idx = static_cast<int>(j);
      break;
    }
  }
  ASSERT_GE(idx, 0);

  {
    OffloadResult bad = clean;
    bad.outcomes[static_cast<std::size_t>(idx)].reward += 100.0;
    EXPECT_TRUE(has_kind(
        validate_offload(inst.topo, inst.requests, inst.realized, bad),
        Violation::Kind::kReward));
  }
  {
    OffloadResult bad = clean;
    bad.outcomes[static_cast<std::size_t>(idx)].station = 999;
    EXPECT_TRUE(has_kind(
        validate_offload(inst.topo, inst.requests, inst.realized, bad),
        Violation::Kind::kStation));
  }
  {
    OffloadResult bad = clean;
    bad.outcomes[static_cast<std::size_t>(idx)].latency_ms = 0.0;
    EXPECT_TRUE(has_kind(
        validate_offload(inst.topo, inst.requests, inst.realized, bad),
        Violation::Kind::kLatency));
  }
  {
    OffloadResult bad = clean;
    bad.outcomes[static_cast<std::size_t>(idx)].realized_level ^= 1u;
    EXPECT_TRUE(has_kind(
        validate_offload(inst.topo, inst.requests, inst.realized, bad),
        Violation::Kind::kRealization));
  }
  {
    // Granting a reward to every non-admitted request must blow up the
    // per-station capacity aggregate or the reward checks.
    OffloadResult bad = clean;
    for (auto& o : bad.outcomes) {
      if (!o.admitted) {
        o.reward = 500.0;
      }
    }
    EXPECT_TRUE(has_kind(
        validate_offload(inst.topo, inst.requests, inst.realized, bad),
        Violation::Kind::kReward));
  }
}

TEST(Validate, DetectsEq8Violation) {
  // One small station: a rewarded request whose realized demand exceeds the
  // remaining slot capacity must trip the Eq. (8) check.
  std::vector<mec::BaseStation> stations{{0, 1500.0, 1.0, 0.0, 0.0}};
  const mec::Topology topo(std::move(stations), {});
  mec::ARRequest req;
  req.id = 0;
  req.home_station = 0;
  req.tasks = mec::ar_pipeline(3);
  req.demand = mec::RateRewardDist({{90.0, 1.0, 500.0}});  // 1800 MHz
  const std::vector<mec::ARRequest> requests{req};
  const std::vector<std::size_t> realized{0};

  OffloadResult result;
  RequestOutcome o;
  o.request_id = 0;
  o.admitted = true;
  o.rewarded = true;
  o.station = 0;
  o.start_slot = 0;
  o.realized_level = 0;
  o.realized_rate = 90.0;
  o.reward = 500.0;
  o.latency_ms = mec::placement_latency_ms(topo, req, 0);
  o.task_stations.assign(req.tasks.size(), 0);
  result.outcomes.push_back(o);

  const auto violations =
      validate_offload(topo, requests, realized, result);
  EXPECT_TRUE(has_kind(violations, Violation::Kind::kEq8));
  EXPECT_TRUE(has_kind(violations, Violation::Kind::kCapacity));
}

TEST(Validate, KindNamesAreStable) {
  EXPECT_EQ(to_string(Violation::Kind::kShape), "shape");
  EXPECT_EQ(to_string(Violation::Kind::kEq8), "eq8");
  EXPECT_EQ(to_string(Violation::Kind::kCapacity), "capacity");
}

// Property sweep: every algorithm stays clean across seeds.
class ValidateSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ValidateSweep, HeuAlwaysValidates) {
  const Instance inst = make_instance(GetParam());
  util::Rng rng(GetParam() + 7);
  const auto result =
      run_heu(inst.topo, inst.requests, inst.realized, AlgorithmParams{}, rng);
  const auto violations =
      validate_offload(inst.topo, inst.requests, inst.realized, result);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations[0].message);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidateSweep, ::testing::Range(200u, 212u));

}  // namespace
}  // namespace mecar::core
