// MPS round-trip tests: models survive write -> read with identical
// optima, including integer blocks, bounds, and the slot-indexed LP.
#include <gtest/gtest.h>

#include <sstream>

#include "core/slot_lp.h"
#include "lp/branch_and_bound.h"
#include "lp/mps.h"
#include "lp/simplex.h"
#include "mec/workload.h"
#include "util/rng.h"

namespace mecar::lp {
namespace {

Model roundtrip(const Model& model) {
  std::stringstream ss;
  write_mps(model, ss);
  return read_mps(ss);
}

TEST(Mps, SimpleLpRoundTrip) {
  Model m;
  const int x = m.add_variable("x", 3.0);
  const int y = m.add_variable("y", 5.0, 6.5);
  m.add_constraint("c1", Sense::kLe, 4.0, {{x, 1.0}});
  m.add_constraint("c2", Sense::kLe, 18.0, {{x, 3.0}, {y, 2.0}});
  const Model back = roundtrip(m);
  EXPECT_EQ(back.num_variables(), 2);
  EXPECT_EQ(back.num_constraints(), 2);
  const auto a = SimplexSolver().solve(m);
  const auto b = SimplexSolver().solve(back);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

TEST(Mps, SenseVarietyRoundTrip) {
  Model m;
  const int x = m.add_variable("x", -1.0, 3.0);
  const int y = m.add_variable("y", 2.0, 3.0);
  m.add_constraint("ge", Sense::kGe, 1.0, {{x, 1.0}, {y, 1.0}});
  m.add_constraint("eq", Sense::kEq, 2.5, {{x, 1.0}, {y, 0.5}});
  const Model back = roundtrip(m);
  const auto a = SimplexSolver().solve(m);
  const auto b = SimplexSolver().solve(back);
  ASSERT_EQ(a.status, b.status);
  if (a.optimal()) {
    EXPECT_NEAR(a.objective, b.objective, 1e-9);
  }
}

TEST(Mps, IntegerBlockRoundTrip) {
  Model m;
  m.add_variable("a", 10.0, 1.0, true);
  m.add_variable("frac", 1.5, 2.0, false);
  m.add_variable("b", 13.0, 1.0, true);
  m.add_constraint("w", Sense::kLe, 4.0, {{0, 3.0}, {1, 1.0}, {2, 2.0}});
  const Model back = roundtrip(m);
  ASSERT_EQ(back.num_variables(), 3);
  EXPECT_TRUE(back.variable(0).integral);
  EXPECT_FALSE(back.variable(1).integral);
  EXPECT_TRUE(back.variable(2).integral);
  const auto a = BranchAndBound().solve(m);
  const auto b = BranchAndBound().solve(back);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

TEST(Mps, ZeroObjectiveColumnSurvives) {
  Model m;
  m.add_variable("used", 1.0);
  m.add_variable("unused", 0.0);  // appears in no row either
  m.add_constraint("c", Sense::kLe, 1.0, {{0, 1.0}});
  const Model back = roundtrip(m);
  EXPECT_EQ(back.num_variables(), 2);
}

TEST(Mps, SlotLpRoundTripSameOptimum) {
  util::Rng rng(7);
  mec::TopologyParams tparams;
  tparams.num_stations = 6;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 20;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto inst =
      core::build_slot_lp(topo, requests, core::AlgorithmParams{});
  const Model back = roundtrip(inst.model);
  const auto a = SimplexSolver().solve(inst.model);
  const auto b = SimplexSolver().solve(back);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.objective, b.objective, 1e-6 * std::max(1.0, a.objective));
}

TEST(Mps, ReaderRejectsMalformedInput) {
  {
    std::stringstream ss("GARBAGE\n");
    EXPECT_THROW(read_mps(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("ROWS\n Z  bad\n");
    EXPECT_THROW(read_mps(ss), std::invalid_argument);
  }
  {
    std::stringstream ss(
        "ROWS\n N  OBJ\n L  c\nCOLUMNS\n    x  nosuchrow  1.0\n");
    EXPECT_THROW(read_mps(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("RANGES\n");
    EXPECT_THROW(read_mps(ss), std::invalid_argument);
  }
  {
    std::stringstream ss(
        "ROWS\n N  OBJ\n L  c\nCOLUMNS\n    x  c  notanumber\n");
    EXPECT_THROW(read_mps(ss), std::invalid_argument);
  }
}

TEST(Mps, ParseErrorsCarryLineNumbersAndFieldNames) {
  const auto failure = [](const std::string& text) {
    std::stringstream ss(text);
    try {
      read_mps(ss);
    } catch (const MpsParseError& e) {
      return std::make_pair(e.line(), std::string(e.what()));
    }
    return std::make_pair(-1, std::string());
  };
  {
    // Trailing junk in a coefficient: rejected, not truncated to 1.0.
    const auto [line, what] =
        failure("ROWS\n N  OBJ\n L  c\nCOLUMNS\n    x  c  1.0junk\n");
    EXPECT_EQ(line, 5);
    EXPECT_NE(what.find("read_mps: line 5"), std::string::npos);
    EXPECT_NE(what.find("coefficient"), std::string::npos);
    EXPECT_NE(what.find("1.0junk"), std::string::npos);
  }
  {
    const auto [line, what] = failure(
        "ROWS\n N  OBJ\n L  c\nCOLUMNS\n    x  c  1.0\n"
        "RHS\n    RHS1  c  4q\n");
    EXPECT_EQ(line, 7);
    EXPECT_NE(what.find("RHS"), std::string::npos);
  }
  {
    const auto [line, what] = failure(
        "ROWS\n N  OBJ\n L  c\nCOLUMNS\n    x  c  1.0\n"
        "BOUNDS\n UP BND1  x  high\n");
    EXPECT_EQ(line, 7);
    EXPECT_NE(what.find("upper bound"), std::string::npos);
  }
  {
    const auto [line, what] = failure("FROBNICATE\n");
    EXPECT_EQ(line, 1);
    EXPECT_NE(what.find("unknown section"), std::string::npos);
  }
}

TEST(Mps, NamesWithSpacesAreSanitized) {
  Model m;
  m.add_variable("my var", 1.0, 2.0);
  m.add_constraint("a row", Sense::kLe, 1.0, {{0, 1.0}});
  std::stringstream ss;
  write_mps(m, ss, "has space");
  const Model back = read_mps(ss);
  EXPECT_EQ(back.variable(0).name, "my_var");
  EXPECT_EQ(back.row(0).name, "a_row");
}

}  // namespace
}  // namespace mecar::lp
