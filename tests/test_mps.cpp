// MPS round-trip tests: models survive write -> read with identical
// optima, including integer blocks, bounds, and the slot-indexed LP.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/slot_lp.h"
#include "lp/branch_and_bound.h"
#include "lp/mps.h"
#include "lp/simplex.h"
#include "mec/workload.h"
#include "util/rng.h"

namespace mecar::lp {
namespace {

Model roundtrip(const Model& model) {
  std::stringstream ss;
  write_mps(model, ss);
  return read_mps(ss);
}

TEST(Mps, SimpleLpRoundTrip) {
  Model m;
  const int x = m.add_variable("x", 3.0);
  const int y = m.add_variable("y", 5.0, 6.5);
  m.add_constraint("c1", Sense::kLe, 4.0, {{x, 1.0}});
  m.add_constraint("c2", Sense::kLe, 18.0, {{x, 3.0}, {y, 2.0}});
  const Model back = roundtrip(m);
  EXPECT_EQ(back.num_variables(), 2);
  EXPECT_EQ(back.num_constraints(), 2);
  const auto a = SimplexSolver().solve(m);
  const auto b = SimplexSolver().solve(back);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

TEST(Mps, SenseVarietyRoundTrip) {
  Model m;
  const int x = m.add_variable("x", -1.0, 3.0);
  const int y = m.add_variable("y", 2.0, 3.0);
  m.add_constraint("ge", Sense::kGe, 1.0, {{x, 1.0}, {y, 1.0}});
  m.add_constraint("eq", Sense::kEq, 2.5, {{x, 1.0}, {y, 0.5}});
  const Model back = roundtrip(m);
  const auto a = SimplexSolver().solve(m);
  const auto b = SimplexSolver().solve(back);
  ASSERT_EQ(a.status, b.status);
  if (a.optimal()) {
    EXPECT_NEAR(a.objective, b.objective, 1e-9);
  }
}

TEST(Mps, IntegerBlockRoundTrip) {
  Model m;
  m.add_variable("a", 10.0, 1.0, true);
  m.add_variable("frac", 1.5, 2.0, false);
  m.add_variable("b", 13.0, 1.0, true);
  m.add_constraint("w", Sense::kLe, 4.0, {{0, 3.0}, {1, 1.0}, {2, 2.0}});
  const Model back = roundtrip(m);
  ASSERT_EQ(back.num_variables(), 3);
  EXPECT_TRUE(back.variable(0).integral);
  EXPECT_FALSE(back.variable(1).integral);
  EXPECT_TRUE(back.variable(2).integral);
  const auto a = BranchAndBound().solve(m);
  const auto b = BranchAndBound().solve(back);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

TEST(Mps, ZeroObjectiveColumnSurvives) {
  Model m;
  m.add_variable("used", 1.0);
  m.add_variable("unused", 0.0);  // appears in no row either
  m.add_constraint("c", Sense::kLe, 1.0, {{0, 1.0}});
  const Model back = roundtrip(m);
  EXPECT_EQ(back.num_variables(), 2);
}

TEST(Mps, SlotLpRoundTripSameOptimum) {
  util::Rng rng(7);
  mec::TopologyParams tparams;
  tparams.num_stations = 6;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 20;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto inst =
      core::build_slot_lp(topo, requests, core::AlgorithmParams{});
  const Model back = roundtrip(inst.model);
  const auto a = SimplexSolver().solve(inst.model);
  const auto b = SimplexSolver().solve(back);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.objective, b.objective, 1e-6 * std::max(1.0, a.objective));
}

TEST(Mps, ReaderRejectsMalformedInput) {
  {
    std::stringstream ss("GARBAGE\n");
    EXPECT_THROW(read_mps(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("ROWS\n Z  bad\n");
    EXPECT_THROW(read_mps(ss), std::invalid_argument);
  }
  {
    std::stringstream ss(
        "ROWS\n N  OBJ\n L  c\nCOLUMNS\n    x  nosuchrow  1.0\n");
    EXPECT_THROW(read_mps(ss), std::invalid_argument);
  }
  {
    // RANGES is supported, but only on rows that exist.
    std::stringstream ss(
        "ROWS\n N  OBJ\n L  c\nRANGES\n    RNG1  nosuchrow  1.0\n");
    EXPECT_THROW(read_mps(ss), std::invalid_argument);
  }
  {
    std::stringstream ss(
        "ROWS\n N  OBJ\n L  c\nCOLUMNS\n    x  c  notanumber\n");
    EXPECT_THROW(read_mps(ss), std::invalid_argument);
  }
}

TEST(Mps, ParseErrorsCarryLineNumbersAndFieldNames) {
  const auto failure = [](const std::string& text) {
    std::stringstream ss(text);
    try {
      read_mps(ss);
    } catch (const MpsParseError& e) {
      return std::make_pair(e.line(), std::string(e.what()));
    }
    return std::make_pair(-1, std::string());
  };
  {
    // Trailing junk in a coefficient: rejected, not truncated to 1.0.
    const auto [line, what] =
        failure("ROWS\n N  OBJ\n L  c\nCOLUMNS\n    x  c  1.0junk\n");
    EXPECT_EQ(line, 5);
    EXPECT_NE(what.find("read_mps: line 5"), std::string::npos);
    EXPECT_NE(what.find("coefficient"), std::string::npos);
    EXPECT_NE(what.find("1.0junk"), std::string::npos);
  }
  {
    const auto [line, what] = failure(
        "ROWS\n N  OBJ\n L  c\nCOLUMNS\n    x  c  1.0\n"
        "RHS\n    RHS1  c  4q\n");
    EXPECT_EQ(line, 7);
    EXPECT_NE(what.find("RHS"), std::string::npos);
  }
  {
    const auto [line, what] = failure(
        "ROWS\n N  OBJ\n L  c\nCOLUMNS\n    x  c  1.0\n"
        "BOUNDS\n UP BND1  x  high\n");
    EXPECT_EQ(line, 7);
    EXPECT_NE(what.find("UP bound"), std::string::npos);
  }
  {
    const auto [line, what] = failure("FROBNICATE\n");
    EXPECT_EQ(line, 1);
    EXPECT_NE(what.find("unknown section"), std::string::npos);
  }
}

TEST(Mps, ColumnBoundsSurviveRoundTrip) {
  Model m;
  m.add_variable("tight", 4.0, 0.25);
  m.add_variable("loose", 1.0, 7.5);
  m.add_variable("free_up", 2.0);  // +inf upper
  m.add_constraint("c", Sense::kLe, 5.0, {{0, 1.0}, {1, 1.0}, {2, 1.0}});
  const Model back = roundtrip(m);
  ASSERT_EQ(back.num_variables(), 3);
  EXPECT_DOUBLE_EQ(back.variable(0).upper, 0.25);
  EXPECT_DOUBLE_EQ(back.variable(1).upper, 7.5);
  EXPECT_FALSE(std::isfinite(back.variable(2).upper));
  const auto a = SimplexSolver().solve(m);
  const auto b = SimplexSolver().solve(back);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

TEST(Mps, FixedColumnRoundTripsViaFxBound) {
  Model m;
  const int x = m.add_variable("x", 3.0, 5.0);
  const int y = m.add_variable("y", 2.0, 4.0);
  m.add_constraint("c", Sense::kLe, 6.0, {{x, 1.0}, {y, 1.0}});
  const Model fixed = m.with_fixed(y, 1.5);
  const Model back = roundtrip(fixed);
  ASSERT_EQ(back.num_variables(), 2);
  EXPECT_TRUE(back.is_fixed(1));
  EXPECT_DOUBLE_EQ(back.fixed_values()[1], 1.5);
  const auto a = SimplexSolver().solve(fixed);
  const auto b = SimplexSolver().solve(back);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  // The fixed column's objective constant is not representable in MPS, so
  // compare the variable part only.
  EXPECT_NEAR(a.objective - fixed.fixed_objective(),
              b.objective - back.fixed_objective(), 1e-9);
  EXPECT_NEAR(b.x[1], 1.5, 1e-9);
}

TEST(Mps, RangesExpandIntoTwoSidedRows) {
  // max x subject to 2 <= x <= 5 expressed three ways via RANGES.
  const auto solve_text = [](const std::string& rows_and_data) {
    std::stringstream ss(rows_and_data);
    const Model m = read_mps(ss);
    return SimplexSolver().solve(m);
  };
  {
    // L row rhs 5, range 3: x in [2, 5].
    const auto r = solve_text(
        "ROWS\n N  OBJ\n L  c\nCOLUMNS\n    x  OBJ  1.0\n    x  c  1.0\n"
        "RHS\n    RHS1  c  5\nRANGES\n    RNG1  c  3\nENDATA\n");
    ASSERT_TRUE(r.optimal());
    EXPECT_NEAR(r.objective, 5.0, 1e-9);
  }
  {
    // G row rhs 2, range 3, minimizing direction via negative objective:
    // -x maximized pushes x to its lower side 2.
    const auto r = solve_text(
        "ROWS\n N  OBJ\n G  c\nCOLUMNS\n    x  OBJ  -1.0\n    x  c  1.0\n"
        "RHS\n    RHS1  c  2\nRANGES\n    RNG1  c  3\nENDATA\n");
    ASSERT_TRUE(r.optimal());
    EXPECT_NEAR(r.objective, -2.0, 1e-9);
    EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  }
  {
    // E row rhs 2, range 3: [2, 5]; negative range -3: [  -1, 2] clips the
    // column's structural lower bound 0, optimum 2.
    const auto up = solve_text(
        "ROWS\n N  OBJ\n E  c\nCOLUMNS\n    x  OBJ  1.0\n    x  c  1.0\n"
        "RHS\n    RHS1  c  2\nRANGES\n    RNG1  c  3\nENDATA\n");
    ASSERT_TRUE(up.optimal());
    EXPECT_NEAR(up.objective, 5.0, 1e-9);
    const auto down = solve_text(
        "ROWS\n N  OBJ\n E  c\nCOLUMNS\n    x  OBJ  1.0\n    x  c  1.0\n"
        "RHS\n    RHS1  c  2\nRANGES\n    RNG1  c  -3\nENDATA\n");
    ASSERT_TRUE(down.optimal());
    EXPECT_NEAR(down.objective, 2.0, 1e-9);
  }
}

TEST(Mps, BoundRecordMenu) {
  const auto read_text = [](const std::string& text) {
    std::stringstream ss(text);
    return read_mps(ss);
  };
  const std::string preamble =
      "ROWS\n N  OBJ\n L  c\nCOLUMNS\n    x  OBJ  1.0\n    x  c  1.0\n"
      "RHS\n    RHS1  c  9\n";
  {
    const Model m = read_text(preamble + "BOUNDS\n PL BND1  x\nENDATA\n");
    EXPECT_FALSE(std::isfinite(m.variable(0).upper));
  }
  {
    const Model m =
        read_text(preamble + "BOUNDS\n LO BND1  x  0\nENDATA\n");
    EXPECT_FALSE(std::isfinite(m.variable(0).upper));
  }
  {
    const Model m = read_text(preamble + "BOUNDS\n BV BND1  x\nENDATA\n");
    EXPECT_TRUE(m.variable(0).integral);
    EXPECT_DOUBLE_EQ(m.variable(0).upper, 1.0);
  }
  const auto fail_line = [&](const std::string& bounds) {
    try {
      read_text(preamble + bounds);
    } catch (const MpsParseError& e) {
      return e.line();
    }
    return -1;
  };
  EXPECT_EQ(fail_line("BOUNDS\n LO BND1  x  1.5\nENDATA\n"), 10);
  EXPECT_EQ(fail_line("BOUNDS\n FR BND1  x\nENDATA\n"), 10);
  EXPECT_EQ(fail_line("BOUNDS\n MI BND1  x\nENDATA\n"), 10);
  EXPECT_EQ(fail_line("BOUNDS\n UP BND1  x  -2\nENDATA\n"), 10);
  EXPECT_EQ(fail_line("BOUNDS\n FX BND1  x  -1\nENDATA\n"), 10);
  EXPECT_EQ(fail_line("BOUNDS\n XX BND1  x  1\nENDATA\n"), 10);
  EXPECT_EQ(fail_line("BOUNDS\n UP BND1  ghost  1\nENDATA\n"), 10);
}

TEST(Mps, SlotLpBoundedModelRereadsIdentically) {
  util::Rng rng(21);
  mec::TopologyParams tparams;
  tparams.num_stations = 5;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 16;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto inst =
      core::build_slot_lp(topo, requests, core::AlgorithmParams{});
  const Model back = roundtrip(inst.model);
  ASSERT_EQ(back.num_variables(), inst.model.num_variables());
  ASSERT_EQ(back.num_constraints(), inst.model.num_constraints());
  for (int j = 0; j < back.num_variables(); ++j) {
    // Every y column carries its true 0..1 bound through the file.
    EXPECT_DOUBLE_EQ(back.variable(j).upper, inst.model.variable(j).upper);
    EXPECT_NEAR(back.variable(j).objective, inst.model.variable(j).objective,
                1e-12);
  }
  for (int r = 0; r < back.num_constraints(); ++r) {
    EXPECT_EQ(back.row(r).sense, inst.model.row(r).sense);
    EXPECT_NEAR(back.row(r).rhs, inst.model.row(r).rhs, 1e-12);
    ASSERT_EQ(back.row(r).terms.size(), inst.model.row(r).terms.size());
  }
}

TEST(Mps, NamesWithSpacesAreSanitized) {
  Model m;
  m.add_variable("my var", 1.0, 2.0);
  m.add_constraint("a row", Sense::kLe, 1.0, {{0, 1.0}});
  std::stringstream ss;
  write_mps(m, ss, "has space");
  const Model back = read_mps(ss);
  EXPECT_EQ(back.variable(0).name, "my_var");
  EXPECT_EQ(back.row(0).name, "a_row");
}

}  // namespace
}  // namespace mecar::lp
