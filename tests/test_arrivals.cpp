// Arrival-process tests: uniform vs Poisson vs flash-crowd shapes, and the
// flash crowd's effect on the online policies (bursts stress admission).
#include <gtest/gtest.h>

#include <algorithm>

#include "mec/workload.h"
#include "sim/dynamic_rr.h"
#include "sim/online_baselines.h"
#include "sim/online_sim.h"
#include "util/rng.h"

namespace mecar::mec {
namespace {

std::vector<int> arrivals_for(ArrivalProcess process, unsigned seed,
                              int horizon, int n) {
  util::Rng rng(seed);
  const Topology topo = generate_topology({}, rng);
  WorkloadParams params;
  params.num_requests = n;
  params.horizon_slots = horizon;
  params.arrivals = process;
  std::vector<int> slots;
  for (const ARRequest& req : generate_requests(params, topo, rng)) {
    slots.push_back(req.arrival_slot);
  }
  return slots;
}

TEST(Arrivals, AllWithinHorizonAndSorted) {
  for (const auto process :
       {ArrivalProcess::kUniform, ArrivalProcess::kPoisson,
        ArrivalProcess::kFlashCrowd}) {
    const auto slots = arrivals_for(process, 3, 400, 200);
    ASSERT_EQ(slots.size(), 200u);
    EXPECT_TRUE(std::is_sorted(slots.begin(), slots.end()));
    EXPECT_GE(slots.front(), 0);
    EXPECT_LT(slots.back(), 400);
  }
}

TEST(Arrivals, FlashCrowdConcentratesInTheBurstWindow) {
  const int horizon = 400;
  const auto uniform =
      arrivals_for(ArrivalProcess::kUniform, 5, horizon, 400);
  const auto crowd =
      arrivals_for(ArrivalProcess::kFlashCrowd, 5, horizon, 400);
  auto in_burst = [&](const std::vector<int>& slots) {
    const int lo = horizon * 7 / 16;
    const int hi = lo + horizon / 8;
    int count = 0;
    for (int s : slots) count += (s >= lo && s < hi);
    return count;
  };
  // The burst window holds ~1/8 of uniform arrivals but >~1/2 of crowd
  // arrivals (half targeted + background).
  EXPECT_LT(in_burst(uniform), 0.25 * 400);
  EXPECT_GT(in_burst(crowd), 0.40 * 400);
}

TEST(Arrivals, PoissonMeanMatchesUniform) {
  const auto poisson =
      arrivals_for(ArrivalProcess::kPoisson, 7, 400, 400);
  double mean = 0.0;
  for (int s : poisson) mean += s;
  mean /= static_cast<double>(poisson.size());
  EXPECT_NEAR(mean, 200.0, 20.0);
}

TEST(Arrivals, FlashCrowdStressesAdmissionHardest) {
  // Same load, burstier arrivals: every policy drops at least as many
  // requests under the flash crowd; DynamicRR keeps its reward lead.
  util::Rng rng(11);
  const Topology topo = generate_topology({}, rng);
  auto run = [&](ArrivalProcess process, auto&& make_policy) {
    util::Rng wrng(13);
    WorkloadParams wparams;
    wparams.num_requests = 250;
    wparams.horizon_slots = 500;
    wparams.arrivals = process;
    const auto requests = generate_requests(wparams, topo, wrng);
    const auto realized = core::realize_demand_levels(requests, wrng);
    sim::OnlineParams params;
    params.horizon_slots = 500;
    auto policy = make_policy();
    sim::OnlineSimulator simulator(topo, requests, realized, params);
    return simulator.run(*policy);
  };

  auto dynamic_policy = [&] {
    return std::make_unique<sim::DynamicRrPolicy>(
        topo, core::AlgorithmParams{}, sim::DynamicRrParams{},
        util::Rng(17));
  };
  auto kkt_policy = [&] {
    return std::make_unique<sim::HeuKktOnlinePolicy>(
        topo, core::AlgorithmParams{});
  };

  const auto dyn_uniform = run(ArrivalProcess::kUniform, dynamic_policy);
  const auto dyn_crowd = run(ArrivalProcess::kFlashCrowd, dynamic_policy);
  const auto kkt_crowd = run(ArrivalProcess::kFlashCrowd, kkt_policy);

  EXPECT_GE(dyn_crowd.dropped, dyn_uniform.dropped);
  EXPECT_GT(dyn_crowd.total_reward, 0.0);
  // Under the burst, learned admission should stay at least competitive
  // with the mean-commitment baseline.
  EXPECT_GT(dyn_crowd.total_reward, 0.85 * kkt_crowd.total_reward);
}

}  // namespace
}  // namespace mecar::mec
