// Integration tests across subsystems: determinism under seeds, paper-scale
// end-to-end invariants, offline/online consistency, and the figure-shape
// properties the benches rely on.
#include <gtest/gtest.h>

#include "baselines/greedy.h"
#include "baselines/heu_kkt.h"
#include "baselines/ocorp.h"
#include "core/appro.h"
#include "core/heu.h"
#include "mec/trace.h"
#include "mec/workload.h"
#include "sim/dynamic_rr.h"
#include "sim/online_baselines.h"
#include "sim/online_sim.h"
#include "util/rng.h"

namespace mecar {
namespace {

struct World {
  mec::Topology topo;
  std::vector<mec::ARRequest> requests;
  std::vector<std::size_t> realized;
};

World make_world(unsigned seed, int requests_n, int horizon = 0) {
  util::Rng rng(seed);
  mec::Topology topo = mec::generate_topology({}, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = requests_n;
  wparams.horizon_slots = horizon;
  auto requests = mec::generate_requests(wparams, topo, rng);
  auto realized = core::realize_demand_levels(requests, rng);
  return {std::move(topo), std::move(requests), std::move(realized)};
}

TEST(Determinism, SameSeedSameOfflineResults) {
  for (int run = 0; run < 2; ++run) {
    static double first_appro = 0.0, first_greedy = 0.0;
    const World w = make_world(99, 120);
    util::Rng rng(100);
    const double appro =
        core::run_appro(w.topo, w.requests, w.realized,
                        core::AlgorithmParams{}, rng)
            .total_reward();
    const double greedy =
        baselines::run_greedy(w.topo, w.requests, w.realized,
                              core::AlgorithmParams{})
            .total_reward();
    if (run == 0) {
      first_appro = appro;
      first_greedy = greedy;
    } else {
      EXPECT_DOUBLE_EQ(appro, first_appro);
      EXPECT_DOUBLE_EQ(greedy, first_greedy);
    }
  }
}

TEST(Determinism, SameSeedSameOnlineResults) {
  double first = -1.0;
  for (int run = 0; run < 2; ++run) {
    const World w = make_world(7, 150, 300);
    sim::OnlineParams params;
    params.horizon_slots = 300;
    sim::DynamicRrPolicy policy(w.topo, core::AlgorithmParams{},
                                sim::DynamicRrParams{}, util::Rng(8));
    sim::OnlineSimulator simulator(w.topo, w.requests, w.realized, params);
    const double reward = simulator.run(policy).total_reward;
    if (run == 0) {
      first = reward;
    } else {
      EXPECT_DOUBLE_EQ(reward, first);
    }
  }
}

TEST(Determinism, DifferentSeedsDiffer) {
  const World a = make_world(1, 120);
  const World b = make_world(2, 120);
  util::Rng r1(3), r2(3);
  const double ra = core::run_heu(a.topo, a.requests, a.realized,
                                  core::AlgorithmParams{}, r1)
                        .total_reward();
  const double rb = core::run_heu(b.topo, b.requests, b.realized,
                                  core::AlgorithmParams{}, r2)
                        .total_reward();
  EXPECT_NE(ra, rb);
}

TEST(PaperScale, DefaultInstanceRunsEveryOfflineAlgorithm) {
  const World w = make_world(42, 150);  // the paper's default |R|
  const core::AlgorithmParams params;
  util::Rng rng(43);

  const auto appro = core::run_appro(w.topo, w.requests, w.realized, params,
                                     rng);
  util::Rng rng2(43);
  const auto heu =
      core::run_heu(w.topo, w.requests, w.realized, params, rng2);
  const auto greedy =
      baselines::run_greedy(w.topo, w.requests, w.realized, params);
  const auto ocorp =
      baselines::run_ocorp(w.topo, w.requests, w.realized, params);
  const auto kkt =
      baselines::run_heu_kkt(w.topo, w.requests, w.realized, params);

  for (const auto* result : {&appro, &heu, &greedy, &ocorp, &kkt}) {
    EXPECT_GT(result->total_reward(), 0.0);
    EXPECT_GE(result->num_admitted(), result->num_rewarded());
    // Rewarded requests are within latency budgets.
    for (const auto& o : result->outcomes) {
      if (o.rewarded) {
        EXPECT_LE(o.latency_ms, 200.0 + 1e-9);
      }
    }
  }
  // The slot-LP bound caps every realized total on this instance... only
  // in expectation; assert the softer sanity LP bound > 0 and above half
  // of Appro's realized reward.
  EXPECT_GT(appro.lp_bound, 0.5 * appro.total_reward());
}

TEST(PaperScale, RewardsAreCapacityBound) {
  // No algorithm can reward more aggregate demand than the network holds.
  const World w = make_world(13, 300);
  const core::AlgorithmParams params;
  util::Rng rng(14);
  const auto result =
      core::run_heu(w.topo, w.requests, w.realized, params, rng);
  double rewarded_demand = 0.0;
  for (const auto& o : result.outcomes) {
    if (o.rewarded) rewarded_demand += o.realized_rate * params.c_unit;
  }
  EXPECT_LE(rewarded_demand, w.topo.total_capacity_mhz() + 1e-6);
}

TEST(OfflineOnlineConsistency, OnlineCompletionsNeverExceedArrivals) {
  const World w = make_world(17, 200, 400);
  sim::OnlineParams params;
  params.horizon_slots = 400;
  sim::HeuKktOnlinePolicy policy(w.topo, core::AlgorithmParams{});
  sim::OnlineSimulator simulator(w.topo, w.requests, w.realized, params);
  const auto m = simulator.run(policy);
  EXPECT_LE(m.completed, m.arrived);
  // Aggregate collected reward equals the sum over completed outcomes.
  double expected_total = 0.0;
  for (std::size_t j = 0; j < w.requests.size(); ++j) {
    // Cannot reconstruct which completed without the states; rely on the
    // per-slot series consistency instead.
    (void)j;
  }
  for (double r : m.per_slot_reward) expected_total += r;
  EXPECT_DOUBLE_EQ(m.total_reward, expected_total);
}

TEST(TraceDrivenWorkload, EstimatedDemandsDriveOffloading) {
  // Full pipeline: synthesize traces -> estimate demand distributions ->
  // attach to requests -> run the offline algorithms.
  util::Rng rng(23);
  const mec::Topology topo = mec::generate_topology({}, rng);
  std::vector<mec::ARRequest> requests;
  for (int j = 0; j < 30; ++j) {
    mec::TraceParams tparams;
    tparams.duration_s = 5.0;
    // Scale frame sizes up so rates land in the paper's 30-50 MB/s band.
    tparams.frame_kb_mean = 380.0;
    const auto trace = mec::synthesize_trace(tparams, rng);
    mec::ARRequest req;
    req.id = j;
    req.home_station =
        static_cast<int>(rng.uniform_int(0, topo.num_stations() - 1));
    req.tasks = mec::ar_pipeline(4);
    req.demand = mec::estimate_demand(trace, mec::EstimateOptions{}, rng);
    req.latency_budget_ms = 200.0;
    requests.push_back(std::move(req));
  }
  const auto realized = core::realize_demand_levels(requests, rng);
  util::Rng round_rng(24);
  const auto result = core::run_appro(topo, requests, realized,
                                      core::AlgorithmParams{}, round_rng);
  EXPECT_GT(result.num_rewarded(), 0);
  EXPECT_GT(result.total_reward(), 0.0);
}

TEST(CommonRandomNumbers, AlgorithmsSeeTheSameRealizations) {
  const World w = make_world(29, 80);
  const core::AlgorithmParams params;
  util::Rng rng(30);
  const auto appro =
      core::run_appro(w.topo, w.requests, w.realized, params, rng);
  const auto greedy =
      baselines::run_greedy(w.topo, w.requests, w.realized, params);
  for (std::size_t j = 0; j < w.requests.size(); ++j) {
    const auto& oa = appro.outcomes[j];
    const auto& og = greedy.outcomes[j];
    if (oa.admitted && og.admitted) {
      EXPECT_EQ(oa.realized_level, og.realized_level);
      EXPECT_DOUBLE_EQ(oa.realized_rate, og.realized_rate);
    }
  }
}

}  // namespace
}  // namespace mecar
