// Scenario engine: text-format round-trip, hardened parse errors, policy
// registry lookups, report collection, and a golden check pinning the
// runner's sweep to the hand-written per-seed loop the figure benches used
// before the refactor.
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/registry.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "sim/online_sim.h"
#include "util/json_writer.h"
#include "util/stats.h"

namespace {

using namespace mecar;

// ---- scenario text format -------------------------------------------------

exp::ScenarioSpec full_spec() {
  exp::ScenarioSpec spec;
  spec.name = "roundtrip";
  spec.kind = exp::ScenarioKind::kRegret;
  spec.axis = exp::SweepAxis::kHorizon;
  spec.points = {200, 400, 800};
  spec.seeds = 5;
  spec.horizon = 600;
  spec.base.num_requests = 42;
  spec.base.num_stations = 11;
  spec.base.rate_min = 12.5;
  spec.base.rate_max = 61.25;
  spec.base.reward_model = mec::RewardModel::kProportional;
  spec.base.arrivals = mec::ArrivalProcess::kPoisson;
  spec.base.home_skew = 1.5;
  spec.base.link_bandwidth_min_mbps = 210.0;
  spec.base.link_bandwidth_max_mbps = 390.0;
  spec.policies = {{"DynamicRR", "learned"}, {"online:Greedy", "Greedy"}};
  spec.metrics = {"reward", "drops"};
  spec.policy_seed_offset = 9;
  spec.chaos_intensity = 0.25;
  spec.mobility = {{3, 120, 7}};
  spec.rr.threshold_min_mhz = 450.0;
  spec.rr.threshold_max_mhz = 1200.0;
  spec.rr.kappa = 8;
  spec.scale_thresholds = true;
  spec.threshold_headroom = 7.5;
  spec.alg.rounding_divisor = 2.0;
  spec.alg.backfill = true;
  spec.backhaul_audit = true;
  spec.collect_detail = true;
  spec.requests_per_slot = 0.5;
  return spec;
}

TEST(Scenario, WriteReadRoundTrip) {
  const exp::ScenarioSpec spec = full_spec();
  std::stringstream text;
  exp::write_scenario(spec, text);
  const exp::ScenarioSpec back = exp::read_scenario(text);

  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.kind, spec.kind);
  EXPECT_EQ(back.axis, spec.axis);
  EXPECT_EQ(back.points, spec.points);
  EXPECT_EQ(back.seeds, spec.seeds);
  EXPECT_EQ(back.horizon, spec.horizon);
  EXPECT_EQ(back.base.num_requests, spec.base.num_requests);
  EXPECT_EQ(back.base.num_stations, spec.base.num_stations);
  EXPECT_DOUBLE_EQ(back.base.rate_min, spec.base.rate_min);
  EXPECT_DOUBLE_EQ(back.base.rate_max, spec.base.rate_max);
  EXPECT_EQ(back.base.reward_model, spec.base.reward_model);
  EXPECT_EQ(back.base.arrivals, spec.base.arrivals);
  EXPECT_DOUBLE_EQ(back.base.home_skew, spec.base.home_skew);
  EXPECT_DOUBLE_EQ(back.base.link_bandwidth_min_mbps,
                   spec.base.link_bandwidth_min_mbps);
  EXPECT_DOUBLE_EQ(back.base.link_bandwidth_max_mbps,
                   spec.base.link_bandwidth_max_mbps);
  ASSERT_EQ(back.policies.size(), 2u);
  EXPECT_EQ(back.policies[0].name, "DynamicRR");
  EXPECT_EQ(back.policies[0].label, "learned");
  EXPECT_EQ(back.policies[1].name, "online:Greedy");
  EXPECT_EQ(back.policies[1].label, "Greedy");
  EXPECT_EQ(back.metrics, spec.metrics);
  EXPECT_EQ(back.policy_seed_offset, spec.policy_seed_offset);
  EXPECT_DOUBLE_EQ(back.chaos_intensity, spec.chaos_intensity);
  ASSERT_EQ(back.mobility.size(), 1u);
  EXPECT_EQ(back.mobility[0].request_index, 3);
  EXPECT_EQ(back.mobility[0].slot, 120);
  EXPECT_EQ(back.mobility[0].new_home, 7);
  EXPECT_DOUBLE_EQ(back.rr.threshold_min_mhz, spec.rr.threshold_min_mhz);
  EXPECT_DOUBLE_EQ(back.rr.threshold_max_mhz, spec.rr.threshold_max_mhz);
  EXPECT_EQ(back.rr.kappa, spec.rr.kappa);
  EXPECT_EQ(back.scale_thresholds, spec.scale_thresholds);
  EXPECT_DOUBLE_EQ(back.threshold_headroom, spec.threshold_headroom);
  EXPECT_DOUBLE_EQ(back.alg.rounding_divisor, spec.alg.rounding_divisor);
  EXPECT_EQ(back.alg.backfill, spec.alg.backfill);
  EXPECT_EQ(back.backhaul_audit, spec.backhaul_audit);
  EXPECT_EQ(back.collect_detail, spec.collect_detail);
  EXPECT_DOUBLE_EQ(back.requests_per_slot, spec.requests_per_slot);
}

TEST(Scenario, ShardsAndIncrementalLpRoundTrip) {
  exp::ScenarioSpec spec;
  spec.name = "sharded";
  spec.axis = exp::SweepAxis::kRequests;
  spec.points = {10};
  spec.policies = {{"DynamicRR", ""}};
  spec.metrics = {"reward"};
  spec.shards = 4;
  spec.rr.incremental_lp = true;
  std::stringstream text;
  exp::write_scenario(spec, text);
  EXPECT_NE(text.str().find("shards 4"), std::string::npos);
  EXPECT_NE(text.str().find("incremental_lp true"), std::string::npos);
  const exp::ScenarioSpec back = exp::read_scenario(text);
  EXPECT_EQ(back.shards, 4);
  EXPECT_TRUE(back.rr.incremental_lp);

  // Defaults are omitted on write and the legacy force (-1) round-trips.
  exp::ScenarioSpec plain = spec;
  plain.shards = 0;
  plain.rr.incremental_lp = false;
  std::stringstream plain_text;
  exp::write_scenario(plain, plain_text);
  EXPECT_EQ(plain_text.str().find("shards"), std::string::npos);
  EXPECT_EQ(plain_text.str().find("incremental_lp"), std::string::npos);
  spec.shards = -1;
  std::stringstream legacy_text;
  exp::write_scenario(spec, legacy_text);
  EXPECT_EQ(exp::read_scenario(legacy_text).shards, -1);

  std::istringstream bad("name x\nshards -2\n");
  EXPECT_THROW((void)exp::read_scenario(bad), exp::ScenarioParseError);
}

TEST(Scenario, InfiniteBandwidthRoundTrips) {
  exp::ScenarioSpec spec;
  spec.name = "inf";
  spec.axis = exp::SweepAxis::kRequests;
  spec.points = {10};
  spec.policies = {{"Appro", ""}};
  spec.metrics = {"reward"};
  std::stringstream text;
  exp::write_scenario(spec, text);
  const exp::ScenarioSpec back = exp::read_scenario(text);
  EXPECT_TRUE(std::isinf(back.base.link_bandwidth_min_mbps));
  EXPECT_TRUE(std::isinf(back.base.link_bandwidth_max_mbps));
}

TEST(Scenario, ParseErrorsCarryLineNumbers) {
  const auto line_of = [](const std::string& text) {
    std::istringstream is(text);
    try {
      (void)exp::read_scenario(is);
    } catch (const exp::ScenarioParseError& e) {
      EXPECT_NE(std::string(e.what()).find("scenario line"),
                std::string::npos);
      return e.line();
    }
    return -1;
  };
  EXPECT_EQ(line_of("name x\nbogus_key 1\n"), 2);
  EXPECT_EQ(line_of("name x\n\nseeds\n"), 3);          // missing argument
  EXPECT_EQ(line_of("seeds notanumber\n"), 1);         // bad integer
  EXPECT_EQ(line_of("axis sideways\n"), 1);  // unknown axis token
  EXPECT_EQ(line_of("link_bandwidth 210\n"), 1);       // wrong arity
  // End-of-file validation: chaos and a scripted plan are exclusive.
  std::istringstream both(
      "name x\naxis requests\npoints 10\npolicy Appro\nmetric reward\n"
      "chaos 0.5\nfault_plan plan.txt\n");
  EXPECT_THROW((void)exp::read_scenario(both), exp::ScenarioParseError);
}

TEST(Scenario, CommentsAndBlankLinesIgnored) {
  std::istringstream is(
      "# a figure\n\nname fig\naxis requests\npoints 10 20\n"
      "policy DynamicRR  the learned one\nmetric reward\n");
  const exp::ScenarioSpec spec = exp::read_scenario(is);
  EXPECT_EQ(spec.name, "fig");
  ASSERT_EQ(spec.policies.size(), 1u);
  EXPECT_EQ(spec.policies[0].label, "the learned one");
}

// ---- policy registry ------------------------------------------------------

TEST(Registry, UnknownNamesThrowListingKnown) {
  const exp::PolicyRegistry& reg = exp::PolicyRegistry::global();
  const exp::Instance inst = exp::make_instance(7u, exp::InstanceConfig{});
  core::AlgorithmParams params;
  util::Rng rng(1u);
  try {
    (void)reg.run_offline("NoSuchAlgorithm", inst, params, rng);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("Appro"), std::string::npos);
  }
  EXPECT_THROW((void)reg.make_online("NoSuchPolicy", inst.topo, params,
                                     sim::DynamicRrParams{}, util::Rng(1u)),
               std::invalid_argument);
}

TEST(Registry, ResolvePolicyPrefixRules) {
  const exp::PolicyRegistry& reg = exp::PolicyRegistry::global();
  // Bare names on exactly one side resolve there regardless of horizon.
  EXPECT_FALSE(exp::resolve_policy(reg, "Appro", 600).online);
  EXPECT_TRUE(exp::resolve_policy(reg, "DynamicRR", 0).online);
  // Names on both sides resolve by horizon...
  EXPECT_FALSE(exp::resolve_policy(reg, "Greedy", 0).online);
  EXPECT_TRUE(exp::resolve_policy(reg, "Greedy", 600).online);
  // ...and the prefix forces a side and is stripped.
  const exp::ResolvedPolicy off = exp::resolve_policy(reg, "offline:OCORP", 600);
  EXPECT_FALSE(off.online);
  EXPECT_EQ(off.name, "OCORP");
  EXPECT_TRUE(exp::resolve_policy(reg, "online:HeuKKT", 0).online);
  EXPECT_THROW((void)exp::resolve_policy(reg, "offline:DynamicRR", 0),
               std::invalid_argument);
  EXPECT_THROW((void)exp::resolve_policy(reg, "nope", 600),
               std::invalid_argument);
}

// ---- series collection ----------------------------------------------------

TEST(SeriesCollector, AddBeforeStartPointIsStructuredError) {
  exp::SeriesCollector series({"Appro"});
  EXPECT_THROW(series.add("Appro", 1.0), std::logic_error);
  series.start_point();
  EXPECT_NO_THROW(series.add("Appro", 1.0));
  EXPECT_THROW(series.add("Unknown", 1.0), std::out_of_range);
  EXPECT_DOUBLE_EQ(series.mean_at("Appro", 0), 1.0);
}

// ---- runner golden check --------------------------------------------------

// The runner must reproduce the hand-written loop every figure bench ran
// before the refactor: per sweep point, per seed, one instance with common
// random numbers, one policy run seeded Rng(seed + offset), means in seed
// order. Exact equality, not tolerance — the refactor's contract is
// bit-identical output.
TEST(Runner, MatchesLegacyHandLoop) {
  const std::vector<double> points{30, 50};
  const int horizon = 60;
  const int num_seeds = 2;
  const std::vector<std::string> names{"DynamicRR", "Greedy"};

  exp::ScenarioSpec spec;
  spec.name = "golden";
  spec.axis = exp::SweepAxis::kRequests;
  spec.points = points;
  spec.horizon = horizon;
  spec.policies = {{"DynamicRR", "DynamicRR"}, {"online:Greedy", "Greedy"}};
  spec.metrics = {"reward", "drops"};
  exp::Runner runner(spec);
  runner.set_seeds(num_seeds);
  const exp::Report report = runner.run();

  const exp::PolicyRegistry& reg = exp::PolicyRegistry::global();
  for (std::size_t p = 0; p < points.size(); ++p) {
    std::map<std::string, util::RunningStats> reward, drops;
    for (unsigned seed : exp::bench_seeds(num_seeds)) {
      exp::InstanceConfig config;
      config.num_requests = static_cast<int>(points[p]);
      config.horizon_slots = horizon;
      const exp::Instance inst = exp::make_instance(seed, config);
      sim::OnlineParams params;
      params.horizon_slots = horizon;
      for (const std::string& name : names) {
        auto policy =
            reg.make_online(name, inst.topo, core::AlgorithmParams{},
                            sim::DynamicRrParams{}, util::Rng(seed + 1));
        sim::OnlineSimulator simulator(inst.topo, inst.requests,
                                       inst.realized, params);
        const sim::OnlineMetrics m = simulator.run(*policy);
        reward[name].add(m.total_reward);
        drops[name].add(m.dropped);
      }
    }
    for (const std::string& name : names) {
      EXPECT_EQ(report.mean("reward", name, p), reward[name].mean())
          << name << " reward at point " << p;
      EXPECT_EQ(report.mean("drops", name, p), drops[name].mean())
          << name << " drops at point " << p;
    }
  }
}

TEST(Runner, RejectsBadSpecs) {
  exp::ScenarioSpec spec;
  spec.name = "bad";
  spec.axis = exp::SweepAxis::kRequests;  // axis set but no points
  spec.policies = {{"Appro", ""}};
  spec.metrics = {"reward"};
  EXPECT_THROW((void)exp::Runner(spec).run(), std::invalid_argument);

  spec.points = {10};
  spec.metrics = {"no_such_metric"};
  EXPECT_THROW((void)exp::Runner(spec).run(), std::invalid_argument);

  spec.metrics = {"reward"};
  spec.policies = {{"DynamicRR", ""}};  // online with horizon 0
  EXPECT_THROW((void)exp::Runner(spec).run(), std::invalid_argument);
}

// ---- json writer ----------------------------------------------------------

TEST(JsonWriter, EscapesAndFormats) {
  EXPECT_EQ(util::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(util::json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(util::json_number(3.0), "3");
  EXPECT_EQ(util::json_number(0.5), "0.5");
  EXPECT_EQ(util::json_number(std::nan("")), "null");

  std::ostringstream os;
  util::JsonWriter w(os, 0);
  w.begin_object();
  w.field("name", "fig \"4\"");
  w.key("xs").begin_array().value(1).value(2.5).end_array();
  w.end_object();
  EXPECT_TRUE(w.done());
  EXPECT_EQ(os.str(), "{\"name\":\"fig \\\"4\\\"\",\"xs\":[1,2.5]}\n");
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  EXPECT_THROW(w.value(1.0), std::logic_error);  // value without key
  EXPECT_THROW(w.end_array(), std::logic_error);  // unbalanced
}

}  // namespace
