// Tests for the core algorithms: slot-indexed LP construction (Eq. (8)-(12),
// (22)-(23)), randomized rounding, Appro/Heu admission invariants, the
// exact ILP, and Theorem 1's bound checked empirically.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/appro.h"
#include "core/exact.h"
#include "core/incremental_slot_lp.h"
#include "core/heu.h"
#include "core/rounding.h"
#include "core/slot_lp.h"
#include "core/types.h"
#include "lp/revised_simplex.h"
#include "lp/simplex.h"
#include "mec/topology.h"
#include "mec/workload.h"
#include "util/rng.h"

namespace mecar::core {
namespace {

mec::Topology small_topology() {
  // Two stations joined by a 2 ms link; capacities 3000 and 3500 MHz.
  std::vector<mec::BaseStation> stations{
      {0, 3000.0, 1.0, 0.0, 0.0},
      {1, 3500.0, 1.5, 1.0, 0.0},
  };
  std::vector<mec::Link> links{{0, 1, 2.0}};
  return mec::Topology(std::move(stations), std::move(links));
}

mec::ARRequest make_request(int id, int home, double rate_lo, double rate_hi,
                            double reward_lo, double reward_hi) {
  mec::ARRequest req;
  req.id = id;
  req.home_station = home;
  req.tasks = mec::ar_pipeline(4);
  req.demand = mec::RateRewardDist(
      {{rate_lo, 0.5, reward_lo}, {rate_hi, 0.5, reward_hi}});
  req.latency_budget_ms = 200.0;
  req.duration_slots = 10;
  return req;
}

TEST(StationLoad, OccupyTruncatesAtCapacity) {
  const mec::Topology topo = small_topology();
  StationLoad load(topo);
  EXPECT_DOUBLE_EQ(load.capacity_mhz(0), 3000.0);
  EXPECT_DOUBLE_EQ(load.occupy(0, 2000.0), 2000.0);
  EXPECT_DOUBLE_EQ(load.occupy(0, 2000.0), 1000.0);  // truncated
  EXPECT_DOUBLE_EQ(load.remaining_mhz(0), 0.0);
  EXPECT_THROW(load.occupy(0, -1.0), std::invalid_argument);
}

TEST(StationLoad, ReleaseRestoresCapacity) {
  const mec::Topology topo = small_topology();
  StationLoad load(topo);
  load.occupy(1, 1500.0);
  load.release(1, 500.0);
  EXPECT_DOUBLE_EQ(load.used_mhz(1), 1000.0);
  EXPECT_THROW(load.release(1, 5000.0), std::invalid_argument);
}

TEST(RealizeDemandLevels, DeterministicUnderSeed) {
  const mec::Topology topo = small_topology();
  std::vector<mec::ARRequest> requests{
      make_request(0, 0, 30, 50, 400, 500),
      make_request(1, 1, 30, 50, 400, 500),
  };
  util::Rng a(9), b(9);
  EXPECT_EQ(realize_demand_levels(requests, a),
            realize_demand_levels(requests, b));
}

TEST(OffloadResult, AggregatesOutcomes) {
  OffloadResult result;
  RequestOutcome good;
  good.admitted = true;
  good.rewarded = true;
  good.reward = 100.0;
  good.latency_ms = 20.0;
  RequestOutcome bad;
  bad.admitted = true;
  result.outcomes = {good, bad, RequestOutcome{}};
  EXPECT_DOUBLE_EQ(result.total_reward(), 100.0);
  EXPECT_EQ(result.num_admitted(), 2);
  EXPECT_EQ(result.num_rewarded(), 1);
  EXPECT_DOUBLE_EQ(result.average_latency_ms(), 20.0);
}

TEST(CandidateStations, FiltersByLatencyBudget) {
  const mec::Topology topo = small_topology();
  mec::ARRequest req = make_request(0, 0, 30, 50, 400, 500);
  // Total weight 4.0; station 0 latency 4 ms; station 1: 4 + 4*1.5 = 10 ms.
  AlgorithmParams params;
  req.latency_budget_ms = 5.0;
  auto c = candidate_stations(topo, req, params);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].station, 0);
  EXPECT_DOUBLE_EQ(c[0].latency_ms,
                   mec::placement_latency_ms(topo, req, c[0].station));
  req.latency_budget_ms = 200.0;
  c = candidate_stations(topo, req, params);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].station, 0);  // nearest first
  EXPECT_LE(c[0].latency_ms, c[1].latency_ms);
}

TEST(CandidateStations, WaitingTimeShrinksTheSet) {
  const mec::Topology topo = small_topology();
  mec::ARRequest req = make_request(0, 0, 30, 50, 400, 500);
  req.latency_budget_ms = 12.0;
  AlgorithmParams params;
  EXPECT_EQ(candidate_stations(topo, req, params).size(), 2u);
  EXPECT_EQ(candidate_stations(topo, req, params, 5.0).size(), 1u);
  EXPECT_TRUE(candidate_stations(topo, req, params, 100.0).empty());
}

TEST(CandidateStations, RespectsMaxCandidates) {
  util::Rng rng(3);
  const mec::Topology topo = mec::generate_topology({}, rng);
  mec::ARRequest req = make_request(0, 0, 30, 50, 400, 500);
  AlgorithmParams params;
  params.max_candidate_stations = 3;
  EXPECT_LE(candidate_stations(topo, req, params).size(), 3u);
  params.max_candidate_stations = 0;  // unlimited
  EXPECT_GT(candidate_stations(topo, req, params).size(), 3u);
}

TEST(SlotLp, SlotsPerStationFollowCl) {
  const mec::Topology topo = small_topology();
  std::vector<mec::ARRequest> requests{make_request(0, 0, 30, 50, 400, 500)};
  AlgorithmParams params;  // C_l = 1000
  const auto inst = build_slot_lp(topo, requests, params);
  EXPECT_EQ(inst.slots_per_station[0], 3);  // 3000/1000
  EXPECT_EQ(inst.slots_per_station[1], 3);  // floor(3500/1000)
}

TEST(SlotLp, ErFollowsEq8) {
  const mec::Topology topo = small_topology();
  // Rates 30 (demand 600 MHz) and 50 (1000 MHz); rewards 400/600.
  std::vector<mec::ARRequest> requests{make_request(0, 0, 30, 50, 400, 600)};
  AlgorithmParams params;
  const auto inst = build_slot_lp(topo, requests, params);
  // Station 0 (3000 MHz): slot 0 -> cap 150 MB/s -> both levels fit, ER =
  // 0.5*400 + 0.5*600 = 500. Slot 2 -> cap (3000-2000)/20 = 50 -> both fit
  // (50 <= 50), ER = 500. All columns of station 0 have ER 500.
  for (std::size_t c = 0; c < inst.vars.size(); ++c) {
    if (inst.vars[c].station == 0) {
      EXPECT_NEAR(inst.vars[c].expected_reward, 500.0, 1e-9);
    }
  }
}

TEST(SlotLp, ErDropsLevelsThatDoNotFit) {
  // A station with capacity 2600 has 2 slots. Starting at slot 1 leaves
  // 1600 MHz: the 30 MB/s level (600 MHz) fits but a 90 MB/s level
  // (1800 MHz) does not, so Eq. (8) drops it from ER at slot 1.
  std::vector<mec::BaseStation> stations{{0, 2600.0, 1.0, 0.0, 0.0}};
  const mec::Topology topo(std::move(stations), {});
  std::vector<mec::ARRequest> requests{make_request(0, 0, 30, 90, 400, 600)};
  AlgorithmParams params;
  const auto inst = build_slot_lp(topo, requests, params);
  bool saw_slot0 = false, saw_slot1 = false;
  for (const SlotVar& var : inst.vars) {
    if (var.slot == 0) {
      saw_slot0 = true;
      EXPECT_NEAR(var.expected_reward, 500.0, 1e-9);  // both levels
    }
    if (var.slot == 1) {
      saw_slot1 = true;
      EXPECT_NEAR(var.expected_reward, 200.0, 1e-9);  // only rate 30
    }
  }
  EXPECT_TRUE(saw_slot0);
  EXPECT_TRUE(saw_slot1);
}

TEST(SlotLp, RequestRowsLimitAssignment) {
  const mec::Topology topo = small_topology();
  std::vector<mec::ARRequest> requests{make_request(0, 0, 30, 50, 400, 600)};
  AlgorithmParams params;
  const auto inst = build_slot_lp(topo, requests, params);
  const auto res = lp::SimplexSolver().solve(inst.model);
  ASSERT_TRUE(res.optimal());
  double total = 0.0;
  for (int col : inst.request_columns[0]) {
    total += res.x[static_cast<std::size_t>(col)];
  }
  EXPECT_LE(total, 1.0 + 1e-9);
  // A single request faces no contention: the LP assigns it fully.
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_NEAR(res.objective, 500.0, 1e-6);
}

TEST(SlotLp, ShareCapTightensConstraint23) {
  const mec::Topology topo = small_topology();
  std::vector<mec::ARRequest> requests;
  for (int j = 0; j < 12; ++j) {
    requests.push_back(make_request(j, j % 2, 30, 50, 400, 600));
  }
  AlgorithmParams params;
  const auto plain = build_slot_lp(topo, requests, params);
  SlotLpOptions options;
  options.share_cap_mhz = 300.0;  // far below every demand level
  const auto capped = build_slot_lp(topo, requests, params, options);
  const auto res_plain = lp::SimplexSolver().solve(plain.model);
  const auto res_capped = lp::SimplexSolver().solve(capped.model);
  ASSERT_TRUE(res_plain.optimal());
  ASSERT_TRUE(res_capped.optimal());
  // Truncating by the share cap shrinks the per-column mass, so MORE
  // requests fit fractionally: the capped objective can only be >=.
  EXPECT_GE(res_capped.objective, res_plain.objective - 1e-6);
}

TEST(SlotLp, CapacityOverrideShrinksSlots) {
  const mec::Topology topo = small_topology();
  std::vector<mec::ARRequest> requests{make_request(0, 0, 30, 50, 400, 600)};
  AlgorithmParams params;
  SlotLpOptions options;
  options.capacity_override_mhz = {1000.0, 500.0};
  const auto inst = build_slot_lp(topo, requests, params, options);
  EXPECT_EQ(inst.slots_per_station[0], 1);
  EXPECT_EQ(inst.slots_per_station[1], 1);
  options.capacity_override_mhz = {1000.0};  // wrong size
  EXPECT_THROW(build_slot_lp(topo, requests, params, options),
               std::invalid_argument);
}

TEST(SlotLp, PerRequestWaitsFilterColumns) {
  const mec::Topology topo = small_topology();
  std::vector<mec::ARRequest> requests{
      make_request(0, 0, 30, 50, 400, 600),
      make_request(1, 0, 30, 50, 400, 600),
  };
  requests[0].latency_budget_ms = 12.0;
  requests[1].latency_budget_ms = 12.0;
  AlgorithmParams params;
  SlotLpOptions options;
  options.waiting_ms_per_request = {0.0, 5.0};  // second can only fit bs 0
  const auto inst = build_slot_lp(topo, requests, params, options);
  std::set<int> stations_r1;
  for (int col : inst.request_columns[1]) {
    stations_r1.insert(inst.vars[static_cast<std::size_t>(col)].station);
  }
  EXPECT_EQ(stations_r1, std::set<int>{0});
  std::set<int> stations_r0;
  for (int col : inst.request_columns[0]) {
    stations_r0.insert(inst.vars[static_cast<std::size_t>(col)].station);
  }
  EXPECT_EQ(stations_r0.size(), 2u);
  options.waiting_ms_per_request = {0.0};  // wrong size
  EXPECT_THROW(build_slot_lp(topo, requests, params, options),
               std::invalid_argument);
}

TEST(RandomizedRound, PickProbabilityMatchesYOverFour) {
  const mec::Topology topo = small_topology();
  std::vector<mec::ARRequest> requests{make_request(0, 0, 30, 50, 400, 600)};
  AlgorithmParams params;
  const auto inst = build_slot_lp(topo, requests, params);
  const auto res = lp::SimplexSolver().solve(inst.model);
  ASSERT_TRUE(res.optimal());
  double mass = 0.0;
  for (int col : inst.request_columns[0]) {
    mass += res.x[static_cast<std::size_t>(col)];
  }
  util::Rng rng(11);
  int picked = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto picks = randomized_round(inst, res.x, 4.0, requests.size(), rng);
    picked += (picks[0] >= 0);
  }
  EXPECT_NEAR(static_cast<double>(picked) / n, mass / 4.0, 0.02);
}

TEST(RandomizedRound, DivisorValidation) {
  const mec::Topology topo = small_topology();
  std::vector<mec::ARRequest> requests{make_request(0, 0, 30, 50, 400, 600)};
  AlgorithmParams params;
  const auto inst = build_slot_lp(topo, requests, params);
  std::vector<double> y(static_cast<std::size_t>(inst.model.num_variables()),
                        0.0);
  util::Rng rng(1);
  EXPECT_THROW(randomized_round(inst, y, 0.5, requests.size(), rng),
               std::invalid_argument);
}

// --- Invariant sweep over random instances ------------------------------

struct AlgoCase {
  unsigned seed;
  bool migration;  // false = Appro, true = Heu
};

class SlotRoundingInvariants
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>> {};

TEST_P(SlotRoundingInvariants, FeasibleOutcomes) {
  const auto [seed, migration] = GetParam();
  util::Rng rng(seed);
  mec::TopologyParams tparams;
  tparams.num_stations = 10;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 40;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = realize_demand_levels(requests, rng);
  AlgorithmParams params;
  util::Rng round_rng(seed + 1000);
  const OffloadResult result =
      migration ? run_heu(topo, requests, realized, params, round_rng)
                : run_appro(topo, requests, realized, params, round_rng);

  ASSERT_EQ(result.outcomes.size(), requests.size());
  std::vector<double> usage(static_cast<std::size_t>(topo.num_stations()),
                            0.0);
  double total_collected = 0.0;
  for (std::size_t j = 0; j < requests.size(); ++j) {
    const RequestOutcome& o = result.outcomes[j];
    EXPECT_EQ(o.request_id, requests[j].id);
    if (!o.admitted) {
      EXPECT_FALSE(o.rewarded);
      EXPECT_DOUBLE_EQ(o.reward, 0.0);
      continue;
    }
    ASSERT_GE(o.station, 0);
    ASSERT_LT(o.station, topo.num_stations());
    // Latency respects the budget (consolidated or split placement).
    EXPECT_LE(o.latency_ms, requests[j].latency_budget_ms + 1e-9);
    // Realized level is consistent with the shared realization.
    EXPECT_EQ(o.realized_level, realized[j]);
    EXPECT_DOUBLE_EQ(o.realized_rate,
                     requests[j].demand.level(realized[j]).rate);
    if (o.rewarded) {
      EXPECT_DOUBLE_EQ(o.reward,
                       requests[j].demand.level(realized[j]).reward);
      // Eq. (8): the realized demand fits from the starting slot onward.
      EXPECT_LE(o.realized_rate * params.c_unit,
                topo.station(o.station).capacity_mhz -
                    o.start_slot * params.slot_capacity_mhz + 1e-6);
    }
    total_collected += o.reward;
    // Task placement is complete and within the network.
    ASSERT_EQ(o.task_stations.size(), requests[j].tasks.size());
    const double total_w = requests[j].total_proc_weight();
    for (std::size_t k = 0; k < o.task_stations.size(); ++k) {
      ASSERT_GE(o.task_stations[k], 0);
      ASSERT_LT(o.task_stations[k], topo.num_stations());
      usage[static_cast<std::size_t>(o.task_stations[k])] +=
          std::min(o.realized_rate * params.c_unit,
                   topo.station(o.station).capacity_mhz) *
          requests[j].tasks[k].proc_weight / total_w;
    }
  }
  EXPECT_DOUBLE_EQ(result.total_reward(), total_collected);
  EXPECT_GE(result.lp_bound, result.total_reward() * 0.0);  // non-negative
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SlotRoundingInvariants,
    ::testing::Combine(::testing::Range(1u, 11u), ::testing::Bool()));

TEST(Appro, EmptyRequestSetIsFine) {
  const mec::Topology topo = small_topology();
  util::Rng rng(1);
  const auto result = run_appro(topo, {}, {}, AlgorithmParams{}, rng);
  EXPECT_TRUE(result.outcomes.empty());
  EXPECT_DOUBLE_EQ(result.total_reward(), 0.0);
}

TEST(Appro, RealizedSizeMismatchThrows) {
  const mec::Topology topo = small_topology();
  std::vector<mec::ARRequest> requests{make_request(0, 0, 30, 50, 400, 600)};
  util::Rng rng(1);
  EXPECT_THROW(run_appro(topo, requests, {}, AlgorithmParams{}, rng),
               std::invalid_argument);
}

TEST(Appro, SingleRequestIsServed) {
  const mec::Topology topo = small_topology();
  std::vector<mec::ARRequest> requests{make_request(0, 0, 30, 50, 400, 600)};
  const std::vector<std::size_t> realized{0};
  AlgorithmParams params;
  util::Rng rng(5);
  const auto result = run_appro(topo, requests, realized, params, rng);
  // With backfill on, a lone request is always admitted and rewarded.
  EXPECT_EQ(result.num_rewarded(), 1);
  EXPECT_NEAR(result.total_reward(), 400.0, 1e-9);
}

TEST(Appro, BackfillOffLeavesLeftovers) {
  util::Rng rng(21);
  mec::TopologyParams tparams;
  tparams.num_stations = 8;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 60;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = realize_demand_levels(requests, rng);
  AlgorithmParams on, off;
  off.backfill = false;
  util::Rng r1(99), r2(99);
  const auto with = run_appro(topo, requests, realized, on, r1);
  const auto without = run_appro(topo, requests, realized, off, r2);
  // Same LP + same rounding stream: backfill can only add admissions.
  EXPECT_GE(with.num_admitted(), without.num_admitted());
  EXPECT_GE(with.total_reward(), without.total_reward() - 1e-9);
  // The bare y/4 rounding admits roughly a quarter of the requests.
  EXPECT_LT(without.num_admitted(), 30);
}

TEST(Heu, MigrationOnlyAddsReward) {
  // Statistical: over seeds, Heu (migration) admits at least as much as
  // Appro on the same instance and rounding stream.
  double appro_total = 0.0, heu_total = 0.0;
  for (unsigned seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed);
    mec::TopologyParams tparams;
    tparams.num_stations = 8;
    const mec::Topology topo = mec::generate_topology(tparams, rng);
    mec::WorkloadParams wparams;
    wparams.num_requests = 80;
    const auto requests = mec::generate_requests(wparams, topo, rng);
    const auto realized = realize_demand_levels(requests, rng);
    AlgorithmParams params;
    util::Rng r1(seed + 77), r2(seed + 77);
    appro_total += run_appro(topo, requests, realized, params, r1).total_reward();
    heu_total += run_heu(topo, requests, realized, params, r2).total_reward();
  }
  EXPECT_GE(heu_total, appro_total * 0.95);
}

TEST(Exact, SolvesTinyInstanceOptimally) {
  const mec::Topology topo = small_topology();
  // Three requests, station capacities fit about two expected demands
  // each; the ILP must pick the highest expected rewards.
  std::vector<mec::ARRequest> requests{
      make_request(0, 0, 30, 50, 1000, 1000),
      make_request(1, 0, 30, 50, 100, 100),
      make_request(2, 1, 30, 50, 500, 500),
  };
  const std::vector<std::size_t> realized{0, 0, 0};
  ExactOptions options;
  const auto result = run_exact(topo, requests, realized, options);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  // All three fit (expected demand 800 each, capacities 3000/3500).
  EXPECT_EQ(result.offload.num_admitted(), 3);
  EXPECT_NEAR(result.offload.lp_bound, 1600.0, 1e-6);
}

TEST(Exact, ExpectedObjectiveUpperBoundsBlindChoice) {
  // The exact expected objective must be >= the expected reward of any
  // specific feasible assignment, e.g. everything at its home station.
  util::Rng rng(31);
  mec::TopologyParams tparams;
  tparams.num_stations = 4;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 10;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = realize_demand_levels(requests, rng);
  ExactOptions options;
  const auto result = run_exact(topo, requests, realized, options);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);

  double home_expected = 0.0;
  StationLoad load(topo);
  for (const auto& req : requests) {
    const double demand = req.demand.expected_rate() * options.params.c_unit;
    if (load.remaining_mhz(req.home_station) >= demand &&
        mec::placement_latency_ms(topo, req, req.home_station) <=
            req.latency_budget_ms) {
      load.occupy(req.home_station, demand);
      home_expected += req.demand.expected_reward();
    }
  }
  EXPECT_GE(result.offload.lp_bound, home_expected - 1e-6);
}

TEST(Exact, RealizedSizeMismatchThrows) {
  const mec::Topology topo = small_topology();
  std::vector<mec::ARRequest> requests{make_request(0, 0, 30, 50, 400, 600)};
  EXPECT_THROW(run_exact(topo, requests, {}), std::invalid_argument);
}

// Theorem 1 (statistical): the expected reward of bare Appro (no backfill)
// is at least LPOpt/8. We average over rounding draws on a fixed instance
// and compare with margin.
TEST(Theorem1, BareApproBeatsAnEighthOfLpOpt) {
  util::Rng rng(47);
  mec::TopologyParams tparams;
  tparams.num_stations = 8;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 50;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  AlgorithmParams params;
  params.backfill = false;

  double total = 0.0;
  double lp_bound = 0.0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    util::Rng trial_rng(1000 + i);
    const auto realized = realize_demand_levels(requests, trial_rng);
    util::Rng round_rng(2000 + i);
    const auto result =
        run_appro(topo, requests, realized, params, round_rng);
    total += result.total_reward();
    lp_bound = result.lp_bound;
  }
  const double mean_reward = total / trials;
  EXPECT_GE(mean_reward, lp_bound / 8.0);
}

// The ILP expected optimum never falls below the slot LP's rounding target
// divided by the paper's constants — a coarse cross-check that both
// formulations price the same instance consistently.
TEST(CrossCheck, IlpAndLpAgreeOnScale) {
  util::Rng rng(53);
  mec::TopologyParams tparams;
  tparams.num_stations = 5;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 12;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  AlgorithmParams params;

  const auto lp_inst = build_slot_lp(topo, requests, params);
  const auto lp_res = lp::SimplexSolver().solve(lp_inst.model);
  ASSERT_TRUE(lp_res.optimal());

  const auto ilp_inst = build_ilp_rm(topo, requests, params);
  const auto ilp_res = lp::BranchAndBound().solve(ilp_inst.model);
  ASSERT_TRUE(ilp_res.optimal());

  // Lemma 1: the slot LP relaxes the ILP, so LPOpt >= Opt.
  EXPECT_GE(lp_res.objective, ilp_res.objective - 1e-6);
}

// --- IncrementalSlotLp: delta builds vs scratch builds -------------------

class IncrementalSlotLpObjective : public ::testing::TestWithParam<unsigned> {};

TEST_P(IncrementalSlotLpObjective, MatchesScratchAcrossBatchChurn) {
  // Drive the incremental builder through a churn sequence (drop entries,
  // re-add entries, grow waiting) and require the optimum of the mutated
  // model to equal a scratch build at every step.
  util::Rng rng(GetParam());
  mec::TopologyParams tparams;
  tparams.num_stations = 8;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 30;
  const auto all = mec::generate_requests(wparams, topo, rng);
  AlgorithmParams params;

  IncrementalSlotLp inc;
  SlotLpOptions options;
  options.share_cap_mhz = 800.0;
  for (int step = 0; step < 6; ++step) {
    // Rolling window over the request pool: each step drops a few entries
    // from the front and admits a few at the back, like a slot batch.
    std::vector<mec::ARRequest> batch;
    options.waiting_ms_per_request.clear();
    for (int k = step * 3; k < step * 3 + 12; ++k) {
      batch.push_back(all[static_cast<std::size_t>(k)]);
      options.waiting_ms_per_request.push_back(5.0 *
                                               static_cast<double>(step));
    }
    const SlotLpInstance& got = inc.build(topo, batch, params, options);
    const SlotLpInstance want = build_slot_lp(topo, batch, params, options);
    const auto got_res = lp::solve_lp(got.model);
    const auto want_res = lp::solve_lp(want.model);
    ASSERT_TRUE(want_res.optimal()) << "step " << step;
    ASSERT_TRUE(got_res.optimal()) << "step " << step;
    EXPECT_NEAR(want_res.objective, got_res.objective,
                1e-7 * std::max(1.0, want_res.objective))
        << "step " << step;
    // The per-batch metadata must address the current batch.
    ASSERT_EQ(got.request_columns.size(), batch.size());
    for (std::size_t b = 0; b < batch.size(); ++b) {
      for (int col : got.request_columns[b]) {
        EXPECT_EQ(got.vars[static_cast<std::size_t>(col)].request_index,
                  static_cast<int>(b));
      }
    }
  }
  EXPECT_EQ(inc.stats().full_builds, 1)
      << "churn within stable capacities must stay on the delta path";
  EXPECT_GE(inc.stats().delta_builds, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSlotLpObjective,
                         ::testing::Values(3u, 17u, 91u));

TEST(IncrementalSlotLp, ReusesUnchangedBatchAndRebuildsOnCapacityChange) {
  util::Rng rng(5);
  mec::TopologyParams tparams;
  tparams.num_stations = 6;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 10;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  AlgorithmParams params;

  IncrementalSlotLp inc;
  SlotLpOptions options;
  (void)inc.build(topo, requests, params, options);
  EXPECT_EQ(inc.stats().full_builds, 1);
  (void)inc.build(topo, requests, params, options);
  EXPECT_EQ(inc.stats().reuses, 1) << "identical inputs must not mutate";

  // Residual capacities moved: the whole coefficient set is stale.
  options.capacity_override_mhz.assign(
      static_cast<std::size_t>(topo.num_stations()), 900.0);
  const SlotLpInstance& got = inc.build(topo, requests, params, options);
  EXPECT_EQ(inc.stats().full_builds, 2);
  const SlotLpInstance want = build_slot_lp(topo, requests, params, options);
  const auto got_res = lp::solve_lp(got.model);
  const auto want_res = lp::solve_lp(want.model);
  ASSERT_TRUE(got_res.optimal());
  ASSERT_TRUE(want_res.optimal());
  EXPECT_NEAR(got_res.objective, want_res.objective, 1e-9);

  // Batch order shuffles (density re-sort) without membership change stay
  // on the reuse path but re-point the metadata.
  std::vector<mec::ARRequest> reversed(requests.rbegin(), requests.rend());
  const SlotLpInstance& rev = inc.build(topo, reversed, params, options);
  EXPECT_EQ(inc.stats().full_builds, 2);
  for (std::size_t b = 0; b < reversed.size(); ++b) {
    for (int col : rev.request_columns[b]) {
      EXPECT_EQ(rev.vars[static_cast<std::size_t>(col)].request_index,
                static_cast<int>(b));
    }
  }
}

TEST(IncrementalSlotLp, CapacityChurnPreservingSlotCountsStaysOnDeltaPath) {
  // Residual-capacity churn is the every-slot case in an online run:
  // residents come and go, so capacity_override_mhz moves a little each
  // slot while per-station slot counts stay put. That churn must be
  // reconciled in place (objective/bound updates, delta_builds) — a full
  // rebuild per slot would throw away the warm-basis win the incremental
  // path exists for.
  util::Rng rng(13);
  mec::TopologyParams tparams;
  tparams.num_stations = 6;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 12;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  AlgorithmParams params;  // slot_capacity_mhz = 1000

  IncrementalSlotLp inc;
  SlotLpOptions options;
  // All overrides below sit in [650, 980] MHz: every station keeps slot
  // count max(1, floor(cap / 1000)) == 1, and with c_unit = 20 the level-0
  // rate cap (cap / 20 in [32.5, 49]) lands INSIDE the [30, 50] MB/s
  // demand support, so moving the override actually moves column
  // objectives (a cap above 1000 would truncate nothing and the build
  // would legitimately count as a reuse).
  options.capacity_override_mhz.assign(
      static_cast<std::size_t>(topo.num_stations()), 800.0);
  (void)inc.build(topo, requests, params, options);
  ASSERT_EQ(inc.stats().full_builds, 1);

  for (int step = 1; step <= 4; ++step) {
    for (std::size_t bs = 0; bs < options.capacity_override_mhz.size(); ++bs) {
      options.capacity_override_mhz[bs] =
          800.0 + 30.0 * static_cast<double>(step % 2 == 0 ? step : -step) +
          10.0 * static_cast<double>(bs % 3);
    }
    const SlotLpInstance& got = inc.build(topo, requests, params, options);
    EXPECT_EQ(inc.stats().full_builds, 1)
        << "step " << step << ": slot-count-preserving churn forced a rebuild";
    const SlotLpInstance want = build_slot_lp(topo, requests, params, options);
    const auto got_res = lp::solve_lp(got.model);
    const auto want_res = lp::solve_lp(want.model);
    ASSERT_TRUE(got_res.optimal()) << "step " << step;
    ASSERT_TRUE(want_res.optimal()) << "step " << step;
    EXPECT_NEAR(got_res.objective, want_res.objective,
                1e-7 * std::max(1.0, want_res.objective))
        << "step " << step;
  }
  EXPECT_GE(inc.stats().delta_builds, 4)
      << "override churn must be counted as delta builds";

  // Crossing a slot-count boundary is the documented full-rebuild case.
  options.capacity_override_mhz.assign(
      static_cast<std::size_t>(topo.num_stations()), 3400.0);
  (void)inc.build(topo, requests, params, options);
  EXPECT_EQ(inc.stats().full_builds, 2);
}

TEST(IncrementalSlotLp, GhostEntrySharingAnIdForcesNewColumns) {
  // A displaced stream re-enters the batch under its own id but with a
  // degenerate demand and an unbounded budget; the signature must not
  // confuse it with the original request's columns.
  util::Rng rng(9);
  mec::TopologyParams tparams;
  tparams.num_stations = 6;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 8;
  auto requests = mec::generate_requests(wparams, topo, rng);
  AlgorithmParams params;

  IncrementalSlotLp inc;
  SlotLpOptions options;
  (void)inc.build(topo, requests, params, options);

  std::vector<mec::ARRequest> ghosts = requests;
  ghosts[0].demand = mec::RateRewardDist({{2.0, 1.0, 7.5}});
  ghosts[0].latency_budget_ms = 1e9;
  const SlotLpInstance& got = inc.build(topo, ghosts, params, options);
  EXPECT_GE(inc.stats().delta_builds, 1);
  const SlotLpInstance want = build_slot_lp(topo, ghosts, params, options);
  const auto got_res = lp::solve_lp(got.model);
  const auto want_res = lp::solve_lp(want.model);
  ASSERT_TRUE(got_res.optimal());
  ASSERT_TRUE(want_res.optimal());
  EXPECT_NEAR(got_res.objective, want_res.objective,
              1e-7 * std::max(1.0, want_res.objective));
}

}  // namespace
}  // namespace mecar::core
