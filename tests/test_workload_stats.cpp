// Statistical tests of the workload model — in particular the paper's
// challenge-2 property: under the independent reward model, a level's
// reward is (nearly) uncorrelated with its rate, while the proportional
// ablation is strongly correlated.
#include <gtest/gtest.h>

#include <cmath>

#include "mec/workload.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mecar::mec {
namespace {

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  util::RunningStats sx, sy;
  for (double x : xs) sx.add(x);
  for (double y : ys) sy.add(y);
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
  }
  cov /= static_cast<double>(xs.size() - 1);
  return cov / (sx.stddev() * sy.stddev());
}

std::pair<std::vector<double>, std::vector<double>> level_samples(
    RewardModel model, unsigned seed) {
  util::Rng rng(seed);
  const Topology topo = generate_topology({}, rng);
  WorkloadParams params;
  params.num_requests = 400;
  params.reward_model = model;
  std::vector<double> rates, rewards;
  for (const ARRequest& req : generate_requests(params, topo, rng)) {
    for (const RateLevel& lvl : req.demand.levels()) {
      rates.push_back(lvl.rate);
      rewards.push_back(lvl.reward);
    }
  }
  return {std::move(rates), std::move(rewards)};
}

TEST(RewardIndependence, IndependentModelHasLowCorrelation) {
  const auto [rates, rewards] =
      level_samples(RewardModel::kIndependent, 5);
  const double r = pearson(rates, rewards);
  EXPECT_LT(std::abs(r), 0.1);  // "rewards and data rates are independent"
}

TEST(RewardIndependence, ProportionalModelIsStronglyCorrelated) {
  const auto [rates, rewards] =
      level_samples(RewardModel::kProportional, 5);
  const double r = pearson(rates, rewards);
  EXPECT_GT(r, 0.9);
}

TEST(WorkloadStats, ExpectedRateIsBelowSupportMidpoint) {
  // The geometric probability skew biases the expectation below the
  // midpoint of [rate_min, rate_max] ("large data rates are unlikely").
  util::Rng rng(7);
  const Topology topo = generate_topology({}, rng);
  WorkloadParams params;
  params.num_requests = 300;
  util::RunningStats expected;
  for (const ARRequest& req : generate_requests(params, topo, rng)) {
    expected.add(req.demand.expected_rate());
  }
  const double midpoint = (params.rate_min + params.rate_max) / 2.0;
  EXPECT_LT(expected.mean(), midpoint);
  EXPECT_GT(expected.mean(), params.rate_min);
}

TEST(WorkloadStats, UniformSkewEqualizesLevelProbabilities) {
  util::Rng rng(9);
  const Topology topo = generate_topology({}, rng);
  WorkloadParams params;
  params.num_requests = 300;
  params.rate_prob_skew = 1.0;  // uniform base weights (jitter remains)
  util::RunningStats low, high;
  for (const ARRequest& req : generate_requests(params, topo, rng)) {
    low.add(req.demand.levels().front().prob);
    high.add(req.demand.levels().back().prob);
  }
  EXPECT_NEAR(low.mean(), high.mean(), 0.03);
}

TEST(WorkloadStats, HomeSkewConcentratesAttachment) {
  util::Rng rng(11);
  const Topology topo = generate_topology({}, rng);
  auto top_share = [&](double skew) {
    util::Rng wrng(13);
    WorkloadParams params;
    params.num_requests = 600;
    params.home_skew = skew;
    std::vector<int> counts(static_cast<std::size_t>(topo.num_stations()), 0);
    for (const ARRequest& req : generate_requests(params, topo, wrng)) {
      ++counts[static_cast<std::size_t>(req.home_station)];
    }
    return static_cast<double>(
               *std::max_element(counts.begin(), counts.end())) /
           600.0;
  };
  EXPECT_GT(top_share(1.5), top_share(0.0) + 0.1);
}

TEST(WorkloadStats, RateSweepTracksConfiguredSupport) {
  util::Rng rng(17);
  const Topology topo = generate_topology({}, rng);
  for (double rate_max : {20.0, 35.0, 50.0}) {
    util::Rng wrng(19);
    WorkloadParams params;
    params.num_requests = 100;
    params.rate_min = 10.0;
    params.rate_max = rate_max;
    util::RunningStats maxima;
    for (const ARRequest& req : generate_requests(params, topo, wrng)) {
      maxima.add(req.demand.max_rate());
    }
    EXPECT_NEAR(maxima.mean(), rate_max, 0.1 * rate_max + 2.0);
  }
}

}  // namespace
}  // namespace mecar::mec
