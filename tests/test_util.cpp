// Unit tests for the util subsystem: RNG determinism and distributional
// sanity, streaming statistics, tables, CLI parsing, logging.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/arena.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/parse.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace mecar::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.5);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformRangeRejectsInverted) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformMeanApproximatesMidpoint) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.uniform(10.0, 20.0));
  EXPECT_NEAR(stats.mean(), 15.0, 0.1);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(13);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(19);
  const std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) ones += (rng.categorical(weights) == 1);
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsDegenerateWeights) {
  Rng rng(19);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.categorical(zero), std::invalid_argument);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(rng.categorical(negative), std::invalid_argument);
}

TEST(Rng, CategoricalOrNoneReturnsSizeForResidual) {
  Rng rng(23);
  const std::vector<double> weights{0.1, 0.1};  // 0.8 residual vs total 1.0
  int none = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    none += (rng.categorical_or_none(weights, 1.0) == weights.size());
  }
  EXPECT_NEAR(static_cast<double>(none) / n, 0.8, 0.02);
}

TEST(Rng, CategoricalOrNoneValidatesMass) {
  Rng rng(23);
  const std::vector<double> weights{0.9, 0.9};
  EXPECT_THROW(rng.categorical_or_none(weights, 1.0), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonpositiveRate) {
  Rng rng(29);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  Rng a2(42);
  Rng child2 = a2.split();
  EXPECT_EQ(child(), child2());  // deterministic
  EXPECT_NE(child(), a());       // but distinct from parent stream
}

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> v{0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.125), 0.5);
}

TEST(Quantile, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW(quantile(empty, 0.5), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW(quantile(v, 1.5), std::invalid_argument);
}

TEST(Quantile, UnsortedHelperSorts) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile_unsorted(v, 0.5), 2.0);
}

TEST(MeanSum, Basics) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.0);
  EXPECT_DOUBLE_EQ(sum(v), 6.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(FitLine, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const auto fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
}

TEST(FitLine, RejectsDegenerateInput) {
  const std::vector<double> x1{1.0}, y1{1.0};
  EXPECT_THROW(fit_line(x1, y1), std::invalid_argument);
  const std::vector<double> same{2.0, 2.0}, ys{1.0, 5.0};
  EXPECT_THROW(fit_line(same, ys), std::invalid_argument);
}

TEST(Table, AlignedOutputContainsCells) {
  Table t({"n", "reward"});
  t.add_numeric_row("100", {12.345}, 2);
  const std::string out = t.to_aligned();
  EXPECT_NE(out.find("reward"), std::string::npos);
  EXPECT_NE(out.find("12.35"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, PrintEmitsCsvBlock) {
  Table t({"k", "v"});
  t.add_row({"a", "1"});
  std::ostringstream os;
  t.print(os, "demo");
  EXPECT_NE(os.str().find("== demo =="), std::string::npos);
  EXPECT_NE(os.str().find("csv:"), std::string::npos);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Cli, ParsesEqualsAndBareFlagForms) {
  const char* argv[] = {"prog", "--n=5", "--rate=2.5", "--verbose", "pos"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int_or("n", 0), 5);
  EXPECT_DOUBLE_EQ(cli.get_double_or("rate", 0.0), 2.5);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_TRUE(cli.get_bool_or("verbose", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos");
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_int_or("n", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double_or("x", 1.5), 1.5);
  EXPECT_FALSE(cli.has("x"));
  EXPECT_FALSE(cli.get("x").has_value());
  EXPECT_EQ(cli.get_or("name", "dflt"), "dflt");
}

TEST(Parse, DoubleConsumesTheWholeToken) {
  EXPECT_EQ(parse_double("2.5"), 2.5);
  EXPECT_EQ(parse_double("-1e3"), -1000.0);
  EXPECT_TRUE(parse_double("inf").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("3.5x").has_value());  // trailing junk
  EXPECT_FALSE(parse_double("x3.5").has_value());
  EXPECT_FALSE(parse_double("1e999").has_value());  // overflow
}

TEST(Parse, IntRejectsTrailingJunkFractionsAndOverflow) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("12abs").has_value());  // stoll would yield 12
  EXPECT_FALSE(parse_int("3.5").has_value());
  EXPECT_FALSE(parse_int("99999999999999999999").has_value());
}

TEST(Cli, TrailingJunkIsNotSilentlyTruncated) {
  const char* argv[] = {"prog", "--n=12abs", "--rate=3.5x"};
  Cli cli(3, argv);
  EXPECT_THROW(cli.get_int_or("n", 0), std::invalid_argument);
  EXPECT_THROW(cli.get_double_or("rate", 0.0), std::invalid_argument);
  try {
    cli.get_int_or("n", 0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The diagnostic names the flag and the offending value.
    EXPECT_NE(std::string(e.what()).find("--n"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("12abs"), std::string::npos);
  }
}

TEST(Cli, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--n=abc"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.get_int_or("n", 0), std::invalid_argument);
  EXPECT_THROW(cli.get_double_or("n", 0.0), std::invalid_argument);
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=false"};
  Cli cli(5, argv);
  EXPECT_TRUE(cli.get_bool_or("a", false));
  EXPECT_FALSE(cli.get_bool_or("b", true));
  EXPECT_TRUE(cli.get_bool_or("c", false));
  EXPECT_FALSE(cli.get_bool_or("d", true));
}

TEST(Log, ThresholdSuppressesBelowLevel) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kOff);
  log_error() << "never shown";  // must not crash
  set_log_level(original);
  SUCCEED();
}

TEST(Timer, MeasuresNonNegativeDurations) {
  Timer t;
  double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink += std::sqrt(static_cast<double>(i));
  (void)sink;
  EXPECT_GE(t.elapsed_seconds(), 0.0);
  EXPECT_GE(t.elapsed_ms(), 0.0);
  t.restart();
  EXPECT_LT(t.elapsed_seconds(), 1.0);
}

TEST(Timer, ElapsedIsMonotonicallyNonDecreasing) {
  Timer t;
  double last = t.elapsed_seconds();
  for (int i = 0; i < 100; ++i) {
    const double now = t.elapsed_seconds();
    EXPECT_GE(now, last);
    last = now;
  }
  // restart() rewinds: the new reading cannot precede zero.
  t.restart();
  EXPECT_GE(t.elapsed_seconds(), 0.0);
}

TEST(ScopedTimerMs, AccumulatesAcrossScopes) {
  double total_ms = 0.0;
  {
    ScopedTimerMs scope(total_ms);
    double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink += std::sqrt(static_cast<double>(i));
    (void)sink;
  }
  const double after_first = total_ms;
  EXPECT_GE(after_first, 0.0);
  {
    ScopedTimerMs scope(total_ms);
  }
  // The second scope adds to the running total, never resets it.
  EXPECT_GE(total_ms, after_first);
}

TEST(Percentile, MatchesQuantileBitForBit) {
  const std::vector<double> sorted{1.0, 2.0, 4.0, 8.0, 16.0};
  for (double pct : {0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(percentile(sorted, pct), quantile(sorted, pct / 100.0))
        << "pct " << pct;
  }
  const std::vector<double> unsorted{8.0, 1.0, 16.0, 2.0, 4.0};
  EXPECT_EQ(percentile_unsorted(unsorted, 50.0), percentile(sorted, 50.0));
}

TEST(Percentile, RejectsBadInput) {
  const std::vector<double> sorted{1.0, 2.0};
  EXPECT_THROW((void)percentile(sorted, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(sorted, 100.5), std::invalid_argument);
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
}

TEST(PercentileSummary, ComputesAllThreeTails) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(static_cast<double>(i));
  const PercentileSummary s = percentile_summary(samples);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(s.p50, percentile(sorted, 50.0));
  EXPECT_EQ(s.p95, percentile(sorted, 95.0));
  EXPECT_EQ(s.p99, percentile(sorted, 99.0));
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_THROW((void)percentile_summary({}), std::invalid_argument);
}

TEST(HistogramPercentile, InterpolatesInsideBuckets) {
  // Buckets (-inf,10]:0, (10,20]:10, (20,+inf):0 — mass is uniform on
  // (10,20], so p50 lands mid-bucket.
  const std::vector<double> boundaries{10.0, 20.0};
  const std::vector<std::uint64_t> counts{0, 10, 0};
  EXPECT_NEAR(histogram_percentile(boundaries, counts, 50.0), 15.0, 1e-9);
  EXPECT_NEAR(histogram_percentile(boundaries, counts, 0.0), 10.0, 1e-9);
  EXPECT_NEAR(histogram_percentile(boundaries, counts, 100.0), 20.0, 1e-9);
}

TEST(HistogramPercentile, OverflowBucketReturnsLastBoundary) {
  const std::vector<double> boundaries{1.0, 2.0};
  const std::vector<std::uint64_t> counts{0, 0, 5};  // all mass overflows
  EXPECT_EQ(histogram_percentile(boundaries, counts, 99.0), 2.0);
}

TEST(HistogramPercentile, RejectsBadInput) {
  const std::vector<double> boundaries{1.0, 2.0};
  const std::vector<std::uint64_t> counts{1, 1, 1};
  EXPECT_THROW((void)histogram_percentile(boundaries, counts, -5.0),
               std::invalid_argument);
  EXPECT_THROW((void)histogram_percentile(boundaries, counts, 101.0),
               std::invalid_argument);
  // counts must be boundaries.size() + 1.
  const std::vector<std::uint64_t> short_counts{1, 1};
  EXPECT_THROW((void)histogram_percentile(boundaries, short_counts, 50.0),
               std::invalid_argument);
  // No observations: nothing to interpolate.
  const std::vector<std::uint64_t> empty_counts{0, 0, 0};
  EXPECT_THROW((void)histogram_percentile(boundaries, empty_counts, 50.0),
               std::invalid_argument);
}

TEST(Arena, BumpAllocationIsDisjointAndAligned) {
  Arena arena(/*chunk_bytes=*/128);
  double* a = arena.allocate_array<double>(4);
  double* b = arena.allocate_array<double>(4);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(double), 0u);
  // The two arrays must not overlap.
  EXPECT_TRUE(b >= a + 4 || a >= b + 4);
  a[0] = 1.5;
  b[0] = 2.5;
  EXPECT_EQ(a[0], 1.5);
  EXPECT_EQ(b[0], 2.5);
}

TEST(Arena, ResetRecyclesCapacityWithoutNewChunks) {
  Arena arena(/*chunk_bytes=*/256);
  // Warm up past one chunk so the slow path runs at least once.
  for (int i = 0; i < 32; ++i) (void)arena.allocate_array<double>(8);
  const std::size_t chunks_after_warmup = arena.num_chunks();
  const std::size_t capacity = arena.capacity_bytes();
  EXPECT_GT(chunks_after_warmup, 1u);
  for (int round = 0; round < 5; ++round) {
    arena.reset();
    EXPECT_EQ(arena.used_bytes(), 0u);
    for (int i = 0; i < 32; ++i) (void)arena.allocate_array<double>(8);
    // Same allocation pattern after reset: no heap growth.
    EXPECT_EQ(arena.num_chunks(), chunks_after_warmup);
    EXPECT_EQ(arena.capacity_bytes(), capacity);
  }
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(/*chunk_bytes=*/64);
  std::byte* big = arena.allocate_array<std::byte>(1024);
  ASSERT_NE(big, nullptr);
  big[0] = std::byte{0xff};
  big[1023] = std::byte{0x01};
  EXPECT_GE(arena.capacity_bytes(), 1024u);
}

TEST(Arena, ReleaseDropsCapacity) {
  Arena arena;
  (void)arena.allocate(100);
  EXPECT_GT(arena.capacity_bytes(), 0u);
  arena.release();
  EXPECT_EQ(arena.capacity_bytes(), 0u);
  EXPECT_EQ(arena.num_chunks(), 0u);
  // Usable again after release.
  int* p = arena.allocate_array<int>(10);
  ASSERT_NE(p, nullptr);
  p[9] = 7;
  EXPECT_EQ(p[9], 7);
}

TEST(Arena, ArenaVectorUsesArenaStorage) {
  Arena arena;
  ArenaVector<int> v{ArenaAllocator<int>(arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v[999], 999);
  EXPECT_GT(arena.used_bytes(), 1000u * sizeof(int) - 1);
  // Rebind through a pair-like type compiles and shares the arena.
  ArenaAllocator<double> rebound{ArenaAllocator<int>(arena)};
  EXPECT_TRUE(rebound == ArenaAllocator<double>(arena));
}

}  // namespace
}  // namespace mecar::util
