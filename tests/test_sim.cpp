// Tests for the online simulator: water-filling, lifecycle (arrival,
// scheduling, preemption, completion, starvation), latency accounting, and
// the DynamicRR / online-baseline policies.
#include <gtest/gtest.h>

#include <algorithm>

#include "mec/workload.h"
#include "sim/dynamic_rr.h"
#include "sim/online_baselines.h"
#include "sim/online_sim.h"
#include "util/rng.h"

namespace mecar::sim {
namespace {

mec::Topology one_station(double capacity = 2000.0) {
  std::vector<mec::BaseStation> stations{{0, capacity, 1.0, 0.0, 0.0}};
  return mec::Topology(std::move(stations), {});
}

mec::ARRequest stream(int id, double rate, int arrival, int duration,
                      double reward = 500.0) {
  mec::ARRequest req;
  req.id = id;
  req.home_station = 0;
  req.tasks = mec::ar_pipeline(3);
  req.demand = mec::RateRewardDist({{rate, 1.0, reward}});
  req.latency_budget_ms = 200.0;
  req.arrival_slot = arrival;
  req.duration_slots = duration;
  return req;
}

/// Test policy: schedules every waiting request at station 0 immediately
/// and keeps all residents active.
class EagerPolicy final : public OnlinePolicy {
 public:
  SlotDecision decide(const SlotView& view) override {
    SlotDecision d;
    for (int j : view.pending) d.active.push_back({j, 0});
    return d;
  }
  std::string name() const override { return "Eager"; }
};

/// Test policy: never schedules anything.
class IdlePolicy final : public OnlinePolicy {
 public:
  SlotDecision decide(const SlotView&) override { return {}; }
  std::string name() const override { return "Idle"; }
};

TEST(Waterfill, EqualSplitWhenUncapped) {
  const auto alloc = waterfill(900.0, {1000.0, 1000.0, 1000.0});
  ASSERT_EQ(alloc.size(), 3u);
  for (double a : alloc) EXPECT_NEAR(a, 300.0, 1e-9);
}

TEST(Waterfill, CapsAreRespectedAndSurplusRedistributed) {
  const auto alloc = waterfill(1200.0, {100.0, 1000.0, 1000.0});
  EXPECT_NEAR(alloc[0], 100.0, 1e-9);
  EXPECT_NEAR(alloc[1], 550.0, 1e-9);
  EXPECT_NEAR(alloc[2], 550.0, 1e-9);
}

TEST(Waterfill, SurplusCapacityLeftUnused) {
  const auto alloc = waterfill(5000.0, {300.0, 200.0});
  EXPECT_NEAR(alloc[0], 300.0, 1e-9);
  EXPECT_NEAR(alloc[1], 200.0, 1e-9);
}

TEST(Waterfill, EdgeCases) {
  EXPECT_TRUE(waterfill(100.0, {}).empty());
  const auto zero = waterfill(0.0, {10.0});
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
  EXPECT_THROW(waterfill(10.0, {-1.0}), std::invalid_argument);
}

TEST(Waterfill, ZeroCapacityGivesAllZeros) {
  const auto alloc = waterfill(0.0, {100.0, 250.0, 75.0});
  ASSERT_EQ(alloc.size(), 3u);
  for (double a : alloc) EXPECT_DOUBLE_EQ(a, 0.0);
}

TEST(Waterfill, AllZeroDemandsGetNothing) {
  const auto alloc = waterfill(1000.0, {0.0, 0.0, 0.0});
  ASSERT_EQ(alloc.size(), 3u);
  for (double a : alloc) EXPECT_DOUBLE_EQ(a, 0.0);
}

TEST(Waterfill, SingleSaturatingDemandGetsWholeCapacity) {
  const auto alloc = waterfill(100.0, {250.0});
  ASSERT_EQ(alloc.size(), 1u);
  EXPECT_NEAR(alloc[0], 100.0, 1e-9);
}

TEST(Waterfill, EvenSplitWhenNoDemandSaturates) {
  // Every demand exceeds the fair share, so nobody caps out and the split
  // is exactly even regardless of how lopsided the demands are.
  const auto alloc = waterfill(400.0, {900.0, 800.0, 700.0, 600.0});
  ASSERT_EQ(alloc.size(), 4u);
  for (double a : alloc) EXPECT_NEAR(a, 100.0, 1e-9);
}

TEST(Waterfill, ConservesCapacityUnderOverload) {
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> demands;
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    double total_demand = 0.0;
    for (int i = 0; i < n; ++i) {
      demands.push_back(rng.uniform(0.0, 500.0));
      total_demand += demands.back();
    }
    const double cap = rng.uniform(50.0, 1500.0);
    const auto alloc = waterfill(cap, demands);
    double used = 0.0;
    for (std::size_t i = 0; i < alloc.size(); ++i) {
      EXPECT_LE(alloc[i], demands[i] + 1e-9);
      used += alloc[i];
    }
    EXPECT_LE(used, cap + 1e-6);
    // Work-conserving: uses min(cap, total demand).
    EXPECT_NEAR(used, std::min(cap, total_demand), 1e-6);
  }
}

TEST(OnlineSimulator, SingleStreamCompletesOnSchedule) {
  const mec::Topology topo = one_station();
  // Rate 50 -> demand 1000 MHz <= capacity; duration 4 slots.
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 2, 4)};
  OnlineParams params;
  params.horizon_slots = 20;
  OnlineSimulator sim(topo, requests, {0}, params);
  EagerPolicy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.arrived, 1);
  EXPECT_EQ(m.completed, 1);
  EXPECT_EQ(m.dropped, 0);
  EXPECT_DOUBLE_EQ(m.total_reward, 500.0);
  // Scheduled at its arrival slot: zero waiting, placement latency only.
  EXPECT_NEAR(m.avg_latency_ms, mec::placement_latency_ms(topo, requests[0], 0),
              1e-9);
  // Completion lands exactly `duration` slots after first service.
  double collected = 0.0;
  for (std::size_t t = 0; t < m.per_slot_reward.size(); ++t) {
    if (m.per_slot_reward[t] > 0.0) {
      EXPECT_EQ(t, 5u);  // slots 2..5 process 4 slots of work
      collected += m.per_slot_reward[t];
    }
  }
  EXPECT_DOUBLE_EQ(collected, 500.0);
}

TEST(OnlineSimulator, SharingStretchesSessions) {
  const mec::Topology topo = one_station(1000.0);
  // Two rate-50 streams (1000 MHz each) share 1000 MHz: each gets half
  // speed, so a 4-slot session takes 8 slots.
  std::vector<mec::ARRequest> requests{
      stream(0, 50.0, 0, 4),
      stream(1, 50.0, 0, 4),
  };
  OnlineParams params;
  params.horizon_slots = 30;
  OnlineSimulator sim(topo, requests, {0, 0}, params);
  EagerPolicy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.completed, 2);
  for (std::size_t t = 0; t < m.per_slot_reward.size(); ++t) {
    if (m.per_slot_reward[t] > 0.0) {
      EXPECT_EQ(t, 7u);  // both finish at slot 7
    }
  }
}

TEST(OnlineSimulator, UnservedRequestsStarve) {
  const mec::Topology topo = one_station();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 4)};
  OnlineParams params;
  params.horizon_slots = 20;
  OnlineSimulator sim(topo, requests, {0}, params);
  IdlePolicy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.completed, 0);
  EXPECT_EQ(m.dropped, 1);
  EXPECT_DOUBLE_EQ(m.total_reward, 0.0);
}

TEST(OnlineSimulator, LateSchedulingAddsWaitingLatency) {
  const mec::Topology topo = one_station();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 2)};
  OnlineParams params;
  params.horizon_slots = 20;

  class DelayedPolicy final : public OnlinePolicy {
   public:
    SlotDecision decide(const SlotView& view) override {
      SlotDecision d;
      if (view.slot >= 2) {
        for (int j : view.pending) d.active.push_back({j, 0});
      }
      return d;
    }
    std::string name() const override { return "Delayed"; }
  };

  OnlineSimulator sim(topo, requests, {0}, params);
  DelayedPolicy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.completed, 1);
  EXPECT_NEAR(m.avg_latency_ms,
              2 * params.slot_ms +
                  mec::placement_latency_ms(topo, requests[0], 0),
              1e-9);
}

TEST(OnlineSimulator, PreemptionPausesWithoutLosingProgress) {
  const mec::Topology topo = one_station();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 4)};
  OnlineParams params;
  params.horizon_slots = 30;

  // Serve slots 0-1, pause 2-9, resume at 10.
  class PausingPolicy final : public OnlinePolicy {
   public:
    SlotDecision decide(const SlotView& view) override {
      SlotDecision d;
      if (view.slot < 2 || view.slot >= 10) {
        for (int j : view.pending) d.active.push_back({j, 0});
      }
      return d;
    }
    std::string name() const override { return "Pausing"; }
  };

  OnlineSimulator sim(topo, requests, {0}, params);
  PausingPolicy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.completed, 1);  // 2 slots + 2 slots after resume
  for (std::size_t t = 0; t < m.per_slot_reward.size(); ++t) {
    if (m.per_slot_reward[t] > 0.0) {
      EXPECT_EQ(t, 11u);
    }
  }
  // Latency was fixed at first service (slot 0): no waiting.
  EXPECT_NEAR(m.avg_latency_ms,
              mec::placement_latency_ms(topo, requests[0], 0), 1e-9);
}

TEST(OnlineSimulator, LatencyViolatingPlacementIsIgnored) {
  // Station 1 is too far for the budget; an activation there is refused
  // and the request eventually starves.
  std::vector<mec::BaseStation> stations{
      {0, 2000.0, 1.0, 0.0, 0.0},
      {1, 2000.0, 1.0, 1.0, 0.0},
  };
  std::vector<mec::Link> links{{0, 1, 150.0}};  // 2x150 > 200 budget
  const mec::Topology topo(std::move(stations), std::move(links));
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 2)};

  class FarPolicy final : public OnlinePolicy {
   public:
    SlotDecision decide(const SlotView& view) override {
      SlotDecision d;
      for (int j : view.pending) d.active.push_back({j, 1});
      return d;
    }
    std::string name() const override { return "Far"; }
  };

  OnlineParams params;
  params.horizon_slots = 10;
  OnlineSimulator sim(topo, requests, {0}, params);
  FarPolicy policy;
  const auto m = sim.run(policy);
  EXPECT_EQ(m.completed, 0);
  EXPECT_EQ(m.dropped, 1);
}

TEST(OnlineSimulator, ValidatesInput) {
  const mec::Topology topo = one_station();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 2)};
  OnlineParams params;
  EXPECT_THROW(OnlineSimulator(topo, requests, {}, params),
               std::invalid_argument);
  params.horizon_slots = 0;
  EXPECT_THROW(OnlineSimulator(topo, requests, {0}, params),
               std::invalid_argument);
}

TEST(OnlineSimulator, BadActivationIndexThrows) {
  const mec::Topology topo = one_station();
  std::vector<mec::ARRequest> requests{stream(0, 50.0, 0, 2)};
  OnlineParams params;
  params.horizon_slots = 5;

  class BadPolicy final : public OnlinePolicy {
   public:
    SlotDecision decide(const SlotView&) override {
      SlotDecision d;
      d.active.push_back({42, 0});
      return d;
    }
    std::string name() const override { return "Bad"; }
  };

  OnlineSimulator sim(topo, requests, {0}, params);
  BadPolicy policy;
  EXPECT_THROW(sim.run(policy), std::out_of_range);
}

// --- End-to-end policy comparisons ---------------------------------------

struct OnlineSetup {
  mec::Topology topo;
  std::vector<mec::ARRequest> requests;
  std::vector<std::size_t> realized;
  OnlineParams params;
};

OnlineSetup make_setup(unsigned seed, int num_requests) {
  util::Rng rng(seed);
  mec::TopologyParams tparams;
  tparams.num_stations = 12;
  mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = num_requests;
  wparams.horizon_slots = 400;
  auto requests = mec::generate_requests(wparams, topo, rng);
  auto realized = core::realize_demand_levels(requests, rng);
  OnlineParams params;
  params.horizon_slots = 400;
  return {std::move(topo), std::move(requests), std::move(realized), params};
}

TEST(OnlinePolicies, AllProduceValidMetrics) {
  const OnlineSetup setup = make_setup(3, 120);
  std::vector<std::unique_ptr<OnlinePolicy>> policies;
  policies.push_back(std::make_unique<DynamicRrPolicy>(
      setup.topo, core::AlgorithmParams{}, DynamicRrParams{}, util::Rng(4)));
  policies.push_back(std::make_unique<GreedyOnlinePolicy>(
      setup.topo, core::AlgorithmParams{}));
  policies.push_back(std::make_unique<OcorpOnlinePolicy>(
      setup.topo, core::AlgorithmParams{}));
  policies.push_back(std::make_unique<HeuKktOnlinePolicy>(
      setup.topo, core::AlgorithmParams{}));
  for (auto& policy : policies) {
    OnlineSimulator sim(setup.topo, setup.requests, setup.realized,
                        setup.params);
    const auto m = sim.run(*policy);
    EXPECT_EQ(m.arrived, 120) << policy->name();
    EXPECT_EQ(m.completed + m.dropped + m.unfinished, m.arrived)
        << policy->name();
    EXPECT_GT(m.total_reward, 0.0) << policy->name();
    EXPECT_GE(m.avg_latency_ms, 0.0) << policy->name();
    EXPECT_LE(m.avg_latency_ms, 200.0) << policy->name();
    EXPECT_EQ(m.per_slot_reward.size(), 400u) << policy->name();
  }
}

TEST(OnlinePolicies, DynamicRrBeatsLocalBaselinesUnderLoad) {
  double dynamic_total = 0.0, greedy_total = 0.0, ocorp_total = 0.0;
  for (unsigned seed : {7u, 23u, 41u}) {
    const OnlineSetup setup = make_setup(seed, 220);
    {
      DynamicRrPolicy policy(setup.topo, core::AlgorithmParams{},
                             DynamicRrParams{}, util::Rng(seed + 1));
      OnlineSimulator sim(setup.topo, setup.requests, setup.realized,
                          setup.params);
      dynamic_total += sim.run(policy).total_reward;
    }
    {
      GreedyOnlinePolicy policy(setup.topo, core::AlgorithmParams{});
      OnlineSimulator sim(setup.topo, setup.requests, setup.realized,
                          setup.params);
      greedy_total += sim.run(policy).total_reward;
    }
    {
      OcorpOnlinePolicy policy(setup.topo, core::AlgorithmParams{});
      OnlineSimulator sim(setup.topo, setup.requests, setup.realized,
                          setup.params);
      ocorp_total += sim.run(policy).total_reward;
    }
  }
  EXPECT_GT(dynamic_total, 1.1 * greedy_total);
  EXPECT_GT(dynamic_total, 1.1 * ocorp_total);
}

TEST(DynamicRr, ThresholdStaysOnGrid) {
  const OnlineSetup setup = make_setup(11, 150);
  DynamicRrPolicy policy(setup.topo, core::AlgorithmParams{},
                         DynamicRrParams{}, util::Rng(12));
  OnlineSimulator sim(setup.topo, setup.requests, setup.realized,
                      setup.params);
  sim.run(policy);
  const auto& values = policy.grid().values();
  const double th = policy.last_threshold_mhz();
  EXPECT_NE(std::find_if(values.begin(), values.end(),
                         [&](double v) { return std::abs(v - th) < 1e-9; }),
            values.end());
  EXPECT_GE(policy.bandit().rounds(), 1);
  EXPECT_GE(policy.bandit().num_active(), 1);
}

TEST(DynamicRr, RespectsKappaParameter) {
  DynamicRrParams params;
  params.kappa = 9;
  const OnlineSetup setup = make_setup(13, 50);
  DynamicRrPolicy policy(setup.topo, core::AlgorithmParams{}, params,
                         util::Rng(14));
  EXPECT_EQ(policy.grid().num_arms(), 9);
  EXPECT_DOUBLE_EQ(policy.grid().spacing(),
                   (params.threshold_max_mhz - params.threshold_min_mhz) / 8);
}

TEST(OnlineBaselines, GreedyReservesPeakSoRewardedEqualsCompleted) {
  const OnlineSetup setup = make_setup(17, 150);
  GreedyOnlinePolicy policy(setup.topo, core::AlgorithmParams{});
  OnlineSimulator sim(setup.topo, setup.requests, setup.realized,
                      setup.params);
  const auto m = sim.run(policy);
  // Peak reservation -> admitted streams run at full speed and complete
  // exactly duration slots after first service; all completions rewarded.
  EXPECT_GT(m.completed, 0);
  // The total is exactly the sum of the per-slot series.
  double per_slot_sum = 0.0;
  for (double r : m.per_slot_reward) per_slot_sum += r;
  EXPECT_DOUBLE_EQ(m.total_reward, per_slot_sum);
}

}  // namespace
}  // namespace mecar::sim
