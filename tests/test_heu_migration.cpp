// Targeted tests for algorithm Heu's migration step (Alg. 2 steps 11-14):
// constructed scenarios where migration must rescue an admission, respect
// latency budgets, and conserve resources.
#include <gtest/gtest.h>

#include "core/appro.h"
#include "core/heu.h"
#include "core/rounding.h"
#include "mec/workload.h"
#include "util/rng.h"

namespace mecar::core {
namespace {

/// Hub-and-spoke: station 0 (hub) close to everyone; stations 1 and 2 are
/// spokes with ample capacity.
mec::Topology hub_and_spokes(double hub_capacity) {
  std::vector<mec::BaseStation> stations{
      {0, hub_capacity, 1.0, 0.5, 0.5},
      {1, 4000.0, 1.0, 0.4, 0.5},
      {2, 4000.0, 1.0, 0.6, 0.5},
  };
  std::vector<mec::Link> links{{0, 1, 1.0}, {0, 2, 1.0}, {1, 2, 2.5}};
  return mec::Topology(std::move(stations), std::move(links));
}

mec::ARRequest fixed_request(int id, int home, double rate, double reward,
                             double budget_ms = 200.0) {
  mec::ARRequest req;
  req.id = id;
  req.home_station = home;
  req.tasks = mec::ar_pipeline(4);
  req.demand = mec::RateRewardDist({{rate, 1.0, reward}});
  req.latency_budget_ms = budget_ms;
  return req;
}

TEST(HeuMigration, MigrationConservesTotalUsage) {
  // Hub too small for everyone; Heu's migrations must never create or
  // destroy resource usage across the network.
  util::Rng rng(51);
  const mec::Topology topo = hub_and_spokes(2000.0);
  std::vector<mec::ARRequest> requests;
  std::vector<std::size_t> realized;
  for (int j = 0; j < 8; ++j) {
    requests.push_back(fixed_request(j, 0, 40.0, 500.0));
    realized.push_back(0);
  }
  AlgorithmParams params;
  const auto result = run_heu(topo, requests, realized, params, rng);

  double rewarded_usage = 0.0;
  for (const auto& o : result.outcomes) {
    if (!o.admitted) continue;
    // Each admitted request's shares are split over its task stations; the
    // grand total over rewarded requests equals demand (800 MHz each).
    if (o.rewarded) rewarded_usage += o.realized_rate * params.c_unit;
  }
  EXPECT_LE(rewarded_usage, topo.total_capacity_mhz() + 1e-6);
  EXPECT_GT(result.num_rewarded(), 0);
}

TEST(HeuMigration, SplitLatencyStaysWithinBudget) {
  util::Rng rng(53);
  const mec::Topology topo = hub_and_spokes(1700.0);
  std::vector<mec::ARRequest> requests;
  std::vector<std::size_t> realized;
  for (int j = 0; j < 10; ++j) {
    requests.push_back(fixed_request(j, 0, 40.0, 500.0));
    realized.push_back(0);
  }
  AlgorithmParams params;
  const auto result = run_heu(topo, requests, realized, params, rng);
  for (std::size_t j = 0; j < requests.size(); ++j) {
    const auto& o = result.outcomes[j];
    if (!o.admitted) continue;
    // Recompute the split latency from the reported task placement and
    // check it agrees with the outcome and the budget.
    const double lat =
        mec::split_placement_latency_ms(topo, requests[j], o.task_stations);
    EXPECT_NEAR(lat, o.latency_ms, 1e-9);
    EXPECT_LE(lat, requests[j].latency_budget_ms + 1e-9);
  }
}

TEST(HeuMigration, TightBudgetPreventsMigration) {
  // With a latency budget so tight that any inter-station hop violates it,
  // Heu must not split pipelines: every admitted request stays whole.
  util::Rng rng(55);
  const mec::Topology topo = hub_and_spokes(2000.0);
  std::vector<mec::ARRequest> requests;
  std::vector<std::size_t> realized;
  for (int j = 0; j < 8; ++j) {
    // Budget 5 ms: hub processing alone costs 4 ms (weight 4 x 1 ms);
    // any migration adds two 1 ms hops and busts the budget.
    requests.push_back(fixed_request(j, 0, 40.0, 500.0, 5.0));
    realized.push_back(0);
  }
  AlgorithmParams params;
  const auto result = run_heu(topo, requests, realized, params, rng);
  for (const auto& o : result.outcomes) {
    if (!o.admitted) continue;
    for (int bs : o.task_stations) {
      EXPECT_EQ(bs, o.station);  // no task left its station
    }
  }
}

TEST(HeuMigration, HeuAdmitsAtLeastAsManyAsApproOnHubOverload) {
  // The canonical Heu-vs-Appro scenario: hub overloaded with bare rounding
  // (backfill off isolates the migration effect). Heu may migrate donor
  // tasks to the spokes; Appro must reject.
  int heu_wins = 0, ties = 0, appro_wins = 0;
  for (unsigned seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    const mec::Topology topo = hub_and_spokes(1500.0);
    std::vector<mec::ARRequest> requests;
    std::vector<std::size_t> realized;
    for (int j = 0; j < 12; ++j) {
      requests.push_back(fixed_request(j, 0, 40.0, 500.0));
      realized.push_back(0);
    }
    AlgorithmParams params;
    params.backfill = false;
    util::Rng r1(seed + 100), r2(seed + 100);
    const int appro =
        run_appro(topo, requests, realized, params, r1).num_admitted();
    const int heu =
        run_heu(topo, requests, realized, params, r2).num_admitted();
    if (heu > appro) ++heu_wins;
    else if (heu == appro) ++ties;
    else ++appro_wins;
  }
  EXPECT_EQ(appro_wins, 0);
  EXPECT_GT(heu_wins + ties, 15);
}

TEST(HeuMigration, TaskStationsAlwaysValid) {
  util::Rng rng(57);
  mec::TopologyParams tparams;
  tparams.num_stations = 6;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 60;
  wparams.home_skew = 2.0;  // heavy hotspot -> many migrations
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = realize_demand_levels(requests, rng);
  AlgorithmParams params;
  util::Rng round_rng(58);
  const auto result = run_heu(topo, requests, realized, params, round_rng);
  for (std::size_t j = 0; j < requests.size(); ++j) {
    const auto& o = result.outcomes[j];
    if (!o.admitted) continue;
    ASSERT_EQ(o.task_stations.size(), requests[j].tasks.size());
    for (int bs : o.task_stations) {
      EXPECT_GE(bs, 0);
      EXPECT_LT(bs, topo.num_stations());
    }
  }
}

}  // namespace
}  // namespace mecar::core
