// Tests for the backhaul bandwidth extension: path extraction, link load
// tracking, the post-hoc audit, and Appro's bandwidth-aware admission.
#include <gtest/gtest.h>

#include <cmath>

#include "core/appro.h"
#include "core/backhaul.h"
#include "mec/workload.h"
#include "util/rng.h"

namespace mecar::core {
namespace {

/// Line 0 -(l0)- 1 -(l1)- 2 with finite bandwidths.
mec::Topology line(double bw0 = 100.0, double bw1 = 50.0) {
  std::vector<mec::BaseStation> stations{
      {0, 3000.0, 1.0, 0.0, 0.0},
      {1, 3000.0, 1.0, 0.5, 0.0},
      {2, 3000.0, 1.0, 1.0, 0.0},
  };
  std::vector<mec::Link> links{{0, 1, 1.0, bw0}, {1, 2, 1.0, bw1}};
  return mec::Topology(std::move(stations), std::move(links));
}

TEST(ShortestPathLinks, FollowsTheDelayShortestRoute) {
  const mec::Topology topo = line();
  EXPECT_TRUE(topo.shortest_path_links(1, 1).empty());
  const auto p01 = topo.shortest_path_links(0, 1);
  ASSERT_EQ(p01.size(), 1u);
  EXPECT_EQ(p01[0], 0);
  const auto p02 = topo.shortest_path_links(0, 2);
  ASSERT_EQ(p02.size(), 2u);
  EXPECT_EQ(p02[0], 0);
  EXPECT_EQ(p02[1], 1);
  EXPECT_THROW(topo.shortest_path_links(-1, 0), std::out_of_range);
}

TEST(ShortestPathLinks, PrefersTheShortcut) {
  std::vector<mec::BaseStation> stations{
      {0, 3000.0, 1.0, 0.0, 0.0},
      {1, 3000.0, 1.0, 0.5, 0.0},
      {2, 3000.0, 1.0, 1.0, 0.0},
  };
  std::vector<mec::Link> links{
      {0, 1, 5.0}, {1, 2, 5.0}, {0, 2, 3.0}};
  const mec::Topology topo(std::move(stations), std::move(links));
  const auto path = topo.shortest_path_links(0, 2);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 2);
}

TEST(ShortestPathLinks, DisconnectedThrows) {
  std::vector<mec::BaseStation> stations{
      {0, 3000.0, 1.0, 0.0, 0.0},
      {1, 3000.0, 1.0, 1.0, 0.0},
  };
  const mec::Topology topo(std::move(stations), {});
  EXPECT_THROW(topo.shortest_path_links(0, 1), std::runtime_error);
}

TEST(TopologyValidation, RejectsNonPositiveBandwidth) {
  std::vector<mec::BaseStation> stations{
      {0, 3000.0, 1.0, 0.0, 0.0},
      {1, 3000.0, 1.0, 1.0, 0.0},
  };
  EXPECT_THROW(mec::Topology(stations, {{0, 1, 1.0, 0.0}}),
               std::invalid_argument);
}

TEST(BackhaulLoad, ConsumeReleaseRoundTrip) {
  const mec::Topology topo = line(100.0, 50.0);
  BackhaulLoad load(topo);
  const auto path = topo.shortest_path_links(0, 2);
  EXPECT_DOUBLE_EQ(load.available_mbps(path), 50.0);  // bottleneck link
  EXPECT_TRUE(load.consume(path, 30.0));
  EXPECT_DOUBLE_EQ(load.available_mbps(path), 20.0);
  EXPECT_FALSE(load.consume(path, 30.0));  // would exceed the bottleneck
  EXPECT_DOUBLE_EQ(load.used_mbps(0), 30.0);
  load.release(path, 30.0);
  EXPECT_DOUBLE_EQ(load.available_mbps(path), 50.0);
  EXPECT_THROW(load.release(path, 5.0), std::invalid_argument);
  EXPECT_THROW(load.consume(path, -1.0), std::invalid_argument);
}

TEST(BackhaulLoad, EmptyPathIsFree) {
  const mec::Topology topo = line();
  BackhaulLoad load(topo);
  EXPECT_TRUE(std::isinf(load.available_mbps({})));
  EXPECT_TRUE(load.consume({}, 1e9));
}

TEST(BackhaulAudit, VoidsRewardsBeyondTheBottleneck) {
  const mec::Topology topo = line(100.0, 35.0);
  std::vector<mec::ARRequest> requests;
  std::vector<std::size_t> realized;
  OffloadResult result;
  // Two requests homed at 0, both rewarded at station 2 with rate 30:
  // only the first fits the 35 MB/s bottleneck.
  for (int j = 0; j < 2; ++j) {
    mec::ARRequest req;
    req.id = j;
    req.home_station = 0;
    req.tasks = mec::ar_pipeline(3);
    req.demand = mec::RateRewardDist({{30.0, 1.0, 400.0}});
    requests.push_back(req);
    realized.push_back(0);
    RequestOutcome outcome;
    outcome.request_id = j;
    outcome.admitted = true;
    outcome.rewarded = true;
    outcome.station = 2;
    outcome.realized_rate = 30.0;
    outcome.reward = 400.0;
    result.outcomes.push_back(outcome);
  }
  const auto audit = apply_backhaul_audit(topo, requests, result);
  EXPECT_EQ(audit.voided, 1);
  EXPECT_DOUBLE_EQ(audit.reward_lost, 400.0);
  EXPECT_DOUBLE_EQ(result.total_reward(), 400.0);
  EXPECT_NEAR(audit.peak_link_utilization, 30.0 / 35.0, 1e-9);
}

TEST(BackhaulAudit, LocalExecutionIsExempt) {
  const mec::Topology topo = line(1.0, 1.0);  // near-zero backhaul
  std::vector<mec::ARRequest> requests(1);
  requests[0].id = 0;
  requests[0].home_station = 1;
  requests[0].tasks = mec::ar_pipeline(3);
  requests[0].demand = mec::RateRewardDist({{50.0, 1.0, 500.0}});
  OffloadResult result;
  RequestOutcome outcome;
  outcome.admitted = outcome.rewarded = true;
  outcome.station = 1;  // == home
  outcome.realized_rate = 50.0;
  outcome.reward = 500.0;
  result.outcomes.push_back(outcome);
  const auto audit = apply_backhaul_audit(topo, requests, result);
  EXPECT_EQ(audit.voided, 0);
  EXPECT_DOUBLE_EQ(result.total_reward(), 500.0);
}

TEST(BackhaulAudit, SizeMismatchThrows) {
  const mec::Topology topo = line();
  OffloadResult result;
  result.outcomes.resize(2);
  std::vector<mec::ARRequest> requests(1);
  EXPECT_THROW(apply_backhaul_audit(topo, requests, result),
               std::invalid_argument);
}

TEST(BackhaulEnforcement, ApproRespectsFiniteLinks) {
  // Constrained backhaul; bandwidth-aware Appro never places a rewarded
  // stream on a path it cannot carry (audit finds nothing to void).
  util::Rng rng(41);
  mec::TopologyParams tparams;
  tparams.num_stations = 10;
  tparams.link_bandwidth_min_mbps = 40.0;
  tparams.link_bandwidth_max_mbps = 120.0;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 60;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = realize_demand_levels(requests, rng);

  AlgorithmParams params;
  params.enforce_backhaul = true;
  util::Rng round_rng(42);
  auto result = run_appro(topo, requests, realized, params, round_rng);
  const double before = result.total_reward();
  const auto audit = apply_backhaul_audit(topo, requests, result);
  EXPECT_EQ(audit.voided, 0);
  EXPECT_DOUBLE_EQ(result.total_reward(), before);
}

TEST(BackhaulEnforcement, BlindApproLosesRewardToTheAudit) {
  util::Rng rng(43);
  mec::TopologyParams tparams;
  tparams.num_stations = 10;
  tparams.link_bandwidth_min_mbps = 25.0;  // tight backhaul
  tparams.link_bandwidth_max_mbps = 60.0;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 120;
  wparams.home_skew = 1.5;  // hotspots force remote placements
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto realized = realize_demand_levels(requests, rng);

  AlgorithmParams blind;  // enforce_backhaul = false
  util::Rng r1(44);
  auto blind_result = run_appro(topo, requests, realized, blind, r1);
  const auto audit = apply_backhaul_audit(topo, requests, blind_result);
  EXPECT_GT(audit.voided, 0);  // the blind plan oversubscribed some link

  AlgorithmParams aware = blind;
  aware.enforce_backhaul = true;
  util::Rng r2(44);
  auto aware_result = run_appro(topo, requests, realized, aware, r2);
  const auto aware_audit =
      apply_backhaul_audit(topo, requests, aware_result);
  EXPECT_EQ(aware_audit.voided, 0);
  // Awareness retains at least as much audited reward.
  EXPECT_GE(aware_result.total_reward(), blind_result.total_reward() * 0.95);
}

}  // namespace
}  // namespace mecar::core
