// Telemetry subsystem tests: metric registry semantics (registration,
// recording, sharded aggregation, reset), event-trace ring behavior, both
// exporters' text formats, the well-known metric catalog, and the
// run_with_telemetry export round-trip. Value assertions that require
// recording to be compiled in are gated on MECAR_TELEMETRY_ENABLED so the
// suite also passes under -DMECAR_TELEMETRY=OFF (values stay zero there).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/registry.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/telemetry.h"
#include "obs/catalog.h"
#include "obs/event_trace.h"
#include "obs/telemetry.h"

namespace {

using namespace mecar;

// ---- metric registry ------------------------------------------------------

TEST(MetricRegistry, CountersAccumulateAndSnapshot) {
  obs::MetricRegistry reg;
  obs::Counter c = reg.counter("test.count", "a counter");
  c.add();
  c.add(2.5);
  // Re-registering the same name yields a handle to the same metric.
  obs::Counter same = reg.counter("test.count");
  same.add(0.5);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  const obs::CounterSnapshot* found = snap.find_counter("test.count");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->help, "a counter");
#if MECAR_TELEMETRY_ENABLED
  EXPECT_DOUBLE_EQ(found->value, 4.0);
  EXPECT_FALSE(snap.empty());
#else
  EXPECT_DOUBLE_EQ(found->value, 0.0);
  EXPECT_TRUE(snap.empty());
#endif
  EXPECT_EQ(snap.find_counter("no.such"), nullptr);
}

TEST(MetricRegistry, GaugeIsLastWriteWins) {
  obs::MetricRegistry reg;
  obs::Gauge g = reg.gauge("test.gauge");
  const obs::MetricsSnapshot before = reg.snapshot();
  ASSERT_NE(before.find_gauge("test.gauge"), nullptr);
  EXPECT_FALSE(before.find_gauge("test.gauge")->ever_set);
  g.set(7.0);
  g.set(3.0);
  const obs::MetricsSnapshot after = reg.snapshot();
  const obs::GaugeSnapshot* found = after.find_gauge("test.gauge");
  ASSERT_NE(found, nullptr);
#if MECAR_TELEMETRY_ENABLED
  EXPECT_TRUE(found->ever_set);
  EXPECT_DOUBLE_EQ(found->value, 3.0);
#else
  EXPECT_FALSE(found->ever_set);
#endif
}

TEST(MetricRegistry, HistogramBucketsAndStats) {
  obs::MetricRegistry reg;
  obs::Histogram h = reg.histogram("test.hist", {1.0, 2.0, 4.0});
  for (double v : {0.5, 1.5, 1.5, 3.0, 100.0}) h.observe(v);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::HistogramSnapshot* found = snap.find_histogram("test.hist");
  ASSERT_NE(found, nullptr);
  ASSERT_EQ(found->boundaries.size(), 3u);
  ASSERT_EQ(found->counts.size(), 4u);  // 3 finite buckets + overflow
#if MECAR_TELEMETRY_ENABLED
  EXPECT_EQ(found->counts[0], 1u);  // (-inf, 1]
  EXPECT_EQ(found->counts[1], 2u);  // (1, 2]
  EXPECT_EQ(found->counts[2], 1u);  // (2, 4]
  EXPECT_EQ(found->counts[3], 1u);  // (4, +inf)
  EXPECT_EQ(found->count, 5u);
  EXPECT_DOUBLE_EQ(found->sum, 106.5);
  EXPECT_DOUBLE_EQ(found->min, 0.5);
  EXPECT_DOUBLE_EQ(found->max, 100.0);
  // Percentiles interpolate inside buckets and clamp to [min, max].
  const double p50 = found->percentile(50.0);
  EXPECT_GE(p50, found->min);
  EXPECT_LE(p50, 2.0);
  // p100 lands in the overflow bucket, whose best bounded estimate is the
  // last finite boundary (then clamped into [min, max]).
  EXPECT_DOUBLE_EQ(found->percentile(100.0), 4.0);
  EXPECT_DOUBLE_EQ(found->percentile(0.0), found->min);
#else
  EXPECT_EQ(found->count, 0u);
  EXPECT_DOUBLE_EQ(found->percentile(50.0), 0.0);
#endif
}

TEST(MetricRegistry, KindMismatchThrows) {
  obs::MetricRegistry reg;
  (void)reg.counter("mixed.name");
  EXPECT_THROW((void)reg.gauge("mixed.name"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("mixed.name", {1.0}), std::logic_error);
  (void)reg.histogram("hist.name", {1.0, 2.0});
  // Same kind, different boundaries: also a conflict.
  EXPECT_THROW((void)reg.histogram("hist.name", {1.0, 3.0}),
               std::logic_error);
  // Identical re-registration is fine.
  EXPECT_NO_THROW((void)reg.histogram("hist.name", {1.0, 2.0}));
}

TEST(MetricRegistry, ResetZeroesButKeepsRegistrations) {
  obs::MetricRegistry reg;
  obs::Counter c = reg.counter("reset.count");
  obs::Histogram h = reg.histogram("reset.hist", {1.0});
  c.add(5.0);
  h.observe(0.5);
  reg.reset();
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find_counter("reset.count"), nullptr);
  ASSERT_NE(snap.find_histogram("reset.hist"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find_counter("reset.count")->value, 0.0);
  EXPECT_EQ(snap.find_histogram("reset.hist")->count, 0u);
  EXPECT_TRUE(snap.empty());
  // Handles stay valid after reset.
  c.add(1.0);
#if MECAR_TELEMETRY_ENABLED
  EXPECT_DOUBLE_EQ(reg.snapshot().find_counter("reset.count")->value, 1.0);
#endif
}

TEST(MetricRegistry, DescriptorsListEveryMetricInOrder) {
  obs::MetricRegistry reg;
  (void)reg.counter("a.first");
  (void)reg.gauge("b.gauge");
  (void)reg.counter("a.second");
  (void)reg.histogram("c.hist", {1.0, 2.0}, "with help");
  const std::vector<obs::MetricDescriptor> descs = reg.descriptors();
  ASSERT_EQ(descs.size(), 4u);
  EXPECT_EQ(descs[0].name, "a.first");
  EXPECT_EQ(descs[0].kind, obs::MetricKind::kCounter);
  EXPECT_EQ(descs[1].name, "a.second");
  EXPECT_EQ(descs[2].name, "b.gauge");
  EXPECT_EQ(descs[2].kind, obs::MetricKind::kGauge);
  EXPECT_EQ(descs[3].name, "c.hist");
  EXPECT_EQ(descs[3].kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(descs[3].help, "with help");
  EXPECT_EQ(descs[3].boundaries, (std::vector<double>{1.0, 2.0}));
}

#if MECAR_TELEMETRY_ENABLED
TEST(MetricRegistry, CrossThreadCounterSumsAreExact) {
  obs::MetricRegistry reg;
  obs::Counter c = reg.counter("mt.count");
  obs::Histogram h = reg.histogram("mt.hist", {10.0, 100.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(static_cast<double>(i % 200));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  // Integral increments sum exactly regardless of thread schedule.
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.find_counter("mt.count")->value,
                   static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(snap.find_histogram("mt.hist")->count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}
#endif

// ---- exporters ------------------------------------------------------------

TEST(MetricExporters, PrometheusFormat) {
  obs::MetricRegistry reg;
  reg.counter("lp.pivots", "total pivots").add(12.0);
  reg.gauge("bandit.active_arms").set(3.0);
  reg.histogram("sim.reward", {1.0, 2.0}).observe(1.5);
  std::ostringstream os;
  obs::write_prometheus(reg.snapshot(), os);
  const std::string text = os.str();
  // Dots become underscores under a mecar_ prefix.
  EXPECT_NE(text.find("# TYPE mecar_lp_pivots counter"), std::string::npos);
  EXPECT_NE(text.find("# HELP mecar_lp_pivots total pivots"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mecar_bandit_active_arms gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mecar_sim_reward histogram"),
            std::string::npos);
  EXPECT_NE(text.find("mecar_sim_reward_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("mecar_sim_reward_count"), std::string::npos);
#if MECAR_TELEMETRY_ENABLED
  EXPECT_NE(text.find("mecar_lp_pivots 12"), std::string::npos);
#endif
}

TEST(MetricExporters, JsonFormatIsWellFormed) {
  obs::MetricRegistry reg;
  reg.counter("a.count").add(2.0);
  reg.gauge("b.gauge").set(1.5);
  reg.histogram("c.hist", {1.0}).observe(0.5);
  std::ostringstream os;
  obs::write_metrics_json(reg.snapshot(), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
  EXPECT_NE(text.find("\"a.count\""), std::string::npos);
  // Balanced braces/brackets — a cheap structural sanity check.
  long braces = 0;
  long brackets = 0;
  for (char ch : text) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

// ---- event trace ----------------------------------------------------------

TEST(EventTrace, DisabledEmitIsANoOp) {
  obs::EventTrace tr;
  EXPECT_FALSE(tr.enabled());
  EXPECT_EQ(tr.begin_run("ignored", 1.0), -1);
  tr.emit(obs::EventKind::kAdmission, 1.0, 2.0);
  const obs::EventTrace::Snapshot snap = tr.snapshot();
  EXPECT_TRUE(snap.events.empty());
  EXPECT_TRUE(snap.run_labels.empty());
  EXPECT_EQ(snap.dropped, 0u);
}

TEST(EventTrace, RecordsRunSlotContext) {
  obs::EventTrace tr;
  tr.enable(64);
  const int run = tr.begin_run("policyA", 5.0);
  EXPECT_EQ(run, 0);
  tr.set_slot(3);
  tr.emit(obs::EventKind::kLpSolve, 12.0, 1.0, 1.0);
  tr.set_slot(4);
  tr.emit(obs::EventKind::kArmPull, 2.0, 800.0);
  const obs::EventTrace::Snapshot snap = tr.snapshot();
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_EQ(snap.events[0].kind, obs::EventKind::kLpSolve);
  EXPECT_EQ(snap.events[0].run, 0);
  EXPECT_EQ(snap.events[0].slot, 3);
  EXPECT_DOUBLE_EQ(snap.events[0].v0, 12.0);
  EXPECT_EQ(snap.events[1].kind, obs::EventKind::kArmPull);
  EXPECT_EQ(snap.events[1].slot, 4);
  ASSERT_EQ(snap.run_labels.size(), 1u);
  EXPECT_EQ(snap.run_labels[0], "policyA");
  EXPECT_DOUBLE_EQ(snap.run_slot_ms[0], 5.0);
  tr.disable();
}

TEST(EventTrace, RingWrapsAndCountsDropped) {
  obs::EventTrace tr;
  tr.enable(4);
  (void)tr.begin_run("wrap", 1.0);
  for (int i = 0; i < 10; ++i) {
    tr.set_slot(i);
    tr.emit(obs::EventKind::kSlotBegin, static_cast<double>(i));
  }
  const obs::EventTrace::Snapshot snap = tr.snapshot();
  ASSERT_EQ(snap.events.size(), 4u);
  EXPECT_EQ(snap.dropped, 6u);
  // Oldest-first: the survivors are the last four emitted.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(snap.events[static_cast<std::size_t>(i)].slot, 6 + i);
  }
  tr.clear();
  EXPECT_TRUE(tr.snapshot().events.empty());
  EXPECT_TRUE(tr.enabled());
  tr.disable();
}

TEST(EventTrace, StaleThreadContextAfterClearIsIgnored) {
  obs::EventTrace tr;
  tr.enable(16);
  (void)tr.begin_run("first", 1.0);
  tr.clear();  // bumps the generation; this thread's context is now stale
  tr.emit(obs::EventKind::kAdmission, 1.0);
  EXPECT_TRUE(tr.snapshot().events.empty());
  tr.disable();
}

TEST(TraceExporters, JsonAndChromeFormats) {
  obs::EventTrace tr;
  tr.enable(32);
  (void)tr.begin_run("DynamicRR", 10.0);
  tr.set_slot(0);
  tr.emit(obs::EventKind::kArmPull, 1.0, 750.0);
  tr.emit(obs::EventKind::kSlotEnd, 2.5, 3.0);
  const obs::EventTrace::Snapshot snap = tr.snapshot();
  tr.disable();

  std::ostringstream js;
  obs::write_trace_json(snap, js);
  const std::string plain = js.str();
  EXPECT_NE(plain.find("\"dropped\""), std::string::npos);
  EXPECT_NE(plain.find("\"arm_pull\""), std::string::npos);
  EXPECT_NE(plain.find("\"DynamicRR\""), std::string::npos);

  std::ostringstream cs;
  obs::write_chrome_trace(snap, cs);
  const std::string chrome = cs.str();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  // Run 0 gets a thread_name metadata record on tid 1.
  EXPECT_NE(chrome.find("\"thread_name\""), std::string::npos);
  // Slot-end renders as a complete span named "slot" with the slot
  // duration in microseconds (slot_ms = 10 -> dur = 10000).
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"dur\": 10000"), std::string::npos);
  // Instant events carry named args, not v0/v1.
  EXPECT_NE(chrome.find("\"threshold\": 750"), std::string::npos);
  EXPECT_EQ(chrome.find("\"v0\""), std::string::npos);
}

// ---- catalog --------------------------------------------------------------

TEST(Catalog, RegistersTheWellKnownMetrics) {
  (void)obs::metrics();  // force registration in the global registry
  const std::vector<obs::MetricDescriptor> descs =
      obs::registry().descriptors();
  const auto has = [&descs](std::string_view name) {
    for (const obs::MetricDescriptor& d : descs) {
      if (d.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("lp.pivots"));
  EXPECT_TRUE(has("lp.warm_start_hits"));
  EXPECT_TRUE(has("lp.refactorizations"));
  EXPECT_TRUE(has("lp.eta_len"));
  EXPECT_TRUE(has("lp.pricing_mode"));
  EXPECT_TRUE(has("bandit.arm_pulls"));
  EXPECT_TRUE(has("bandit.active_arms"));
  EXPECT_TRUE(has("sim.preemptions"));
  EXPECT_TRUE(has("sim.slot_reward"));
  EXPECT_TRUE(has("exp.trials"));
}

// ---- run_with_telemetry round-trip ----------------------------------------

namespace fs_helpers {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace fs_helpers

TEST(RunWithTelemetry, ExportsMetricsAndTrace) {
  exp::ScenarioSpec spec;
  spec.name = "obs_roundtrip";
  spec.axis = exp::SweepAxis::kRequests;
  spec.points = {20};
  spec.horizon = 40;
  spec.policies = {{"DynamicRR", "DynamicRR"}};
  spec.metrics = {"reward"};
  exp::Runner runner(spec);
  runner.set_seeds(1);

  const std::string metrics_path =
      testing::TempDir() + "obs_metrics.json";
  const std::string trace_path = testing::TempDir() + "obs_trace.json";
  exp::TelemetryExportOptions options;
  options.metrics_path = metrics_path;
  options.trace_path = trace_path;
  const exp::Report report = exp::run_with_telemetry(runner, options);
  EXPECT_FALSE(report.policies().empty());
  // The trace must be disarmed again after the run.
  EXPECT_FALSE(obs::trace().enabled());

  const std::string metrics = fs_helpers::slurp(metrics_path);
  const std::string trace = fs_helpers::slurp(trace_path);
  EXPECT_NE(metrics.find("\"lp.pivots\""), std::string::npos);
  EXPECT_NE(metrics.find("\"sim.preemptions\""), std::string::npos);
  EXPECT_NE(metrics.find("\"bandit.arm_pulls\""), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
#if MECAR_TELEMETRY_ENABLED
  // A real run must have moved the LP counters (JsonWriter indents with a
  // space after the colon; a zero counter would print exactly this).
  EXPECT_EQ(metrics.find("\"lp.pivots\": 0,"), std::string::npos)
      << "lp.pivots stayed zero across a full scenario run";
#endif
  EXPECT_NE(trace.find("\"slot_begin\""), std::string::npos);
  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(RunWithTelemetry, PrometheusSuffixSelectsTextFormat) {
  exp::ScenarioSpec spec;
  spec.name = "obs_prom";
  spec.axis = exp::SweepAxis::kRequests;
  spec.points = {15};
  spec.horizon = 20;
  spec.policies = {{"online:Greedy", "Greedy"}};
  spec.metrics = {"reward"};
  exp::Runner runner(spec);
  runner.set_seeds(1);

  const std::string metrics_path = testing::TempDir() + "obs_metrics.prom";
  exp::TelemetryExportOptions options;
  options.metrics_path = metrics_path;
  (void)exp::run_with_telemetry(runner, options);
  const std::string metrics = fs_helpers::slurp(metrics_path);
  EXPECT_NE(metrics.find("# TYPE mecar_lp_pivots counter"),
            std::string::npos);
  std::remove(metrics_path.c_str());
}

TEST(RunWithTelemetry, ThrowsOnUnwritableOutput) {
  exp::ScenarioSpec spec;
  spec.name = "obs_badpath";
  spec.axis = exp::SweepAxis::kRequests;
  spec.points = {15};
  spec.horizon = 10;
  spec.policies = {{"online:Greedy", "Greedy"}};
  spec.metrics = {"reward"};
  exp::Runner runner(spec);
  runner.set_seeds(1);
  exp::TelemetryExportOptions options;
  options.metrics_path = "/nonexistent-dir/metrics.json";
  EXPECT_THROW((void)exp::run_with_telemetry(runner, options),
               std::runtime_error);
}

}  // namespace
