// Tests for the sharded slot loop (sim/shard.h): bit-for-bit equality with
// the legacy OnlineSimulator loop at any shard count — healthy, under
// chaos, and under mobility — plus shard resolution and the SlotView
// accessors the sharded engine backs with precomputed state.
//
// The equality checks use EXPECT_EQ on doubles deliberately: the sharding
// contract is bit-identity (every cross-shard reduction merges in the
// legacy scan order), not tolerance-equality. tests/CMakeLists.txt also
// registers this binary under MECAR_THREADS=1 and =4, proving the merge
// order does not depend on the pool width.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "exp/instance.h"
#include "sim/dynamic_rr.h"
#include "sim/online_baselines.h"
#include "sim/online_sim.h"
#include "sim/shard.h"
#include "util/rng.h"

namespace mecar::sim {
namespace {

exp::Instance busy_instance(unsigned seed, int horizon) {
  exp::InstanceConfig config;
  config.num_requests = 220;
  config.num_stations = 12;
  config.horizon_slots = horizon;
  return exp::make_instance(seed, config);
}

enum class PolicyKind { kDynamicRr, kGreedy, kOcorp };

std::unique_ptr<OnlinePolicy> make_policy(PolicyKind kind,
                                          const mec::Topology& topo) {
  switch (kind) {
    case PolicyKind::kDynamicRr:
      return std::make_unique<DynamicRrPolicy>(topo, core::AlgorithmParams{},
                                               DynamicRrParams{},
                                               util::Rng(7));
    case PolicyKind::kGreedy:
      return std::make_unique<GreedyOnlinePolicy>(topo,
                                                  core::AlgorithmParams{});
    case PolicyKind::kOcorp:
      return std::make_unique<OcorpOnlinePolicy>(topo,
                                                 core::AlgorithmParams{});
  }
  return nullptr;
}

OnlineMetrics run_once(const exp::Instance& inst, OnlineParams params,
                       PolicyKind kind, int num_shards) {
  params.num_shards = num_shards;
  OnlineSimulator sim(inst.topo, inst.requests, inst.realized, params);
  const auto policy = make_policy(kind, inst.topo);
  return sim.run(*policy);
}

void expect_identical(const OnlineMetrics& a, const OnlineMetrics& b,
                      const char* label) {
  EXPECT_EQ(a.total_reward, b.total_reward) << label;
  EXPECT_EQ(a.arrived, b.arrived) << label;
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.dropped, b.dropped) << label;
  EXPECT_EQ(a.unfinished, b.unfinished) << label;
  EXPECT_EQ(a.displaced, b.displaced) << label;
  EXPECT_EQ(a.handovers, b.handovers) << label;
  EXPECT_EQ(a.avg_latency_ms, b.avg_latency_ms) << label;
  EXPECT_EQ(a.per_slot_reward, b.per_slot_reward) << label;
  EXPECT_EQ(a.completed_latencies_ms, b.completed_latencies_ms) << label;
  EXPECT_EQ(a.per_slot_utilization, b.per_slot_utilization) << label;
  EXPECT_EQ(a.service_ratios, b.service_ratios) << label;
  EXPECT_EQ(a.resilience.fault_epochs, b.resilience.fault_epochs) << label;
  EXPECT_EQ(a.resilience.displaced_outage, b.resilience.displaced_outage)
      << label;
  EXPECT_EQ(a.resilience.displaced_partition,
            b.resilience.displaced_partition)
      << label;
  EXPECT_EQ(a.resilience.recovered, b.resilience.recovered) << label;
  EXPECT_EQ(a.resilience.mean_recovery_slots,
            b.resilience.mean_recovery_slots)
      << label;
  EXPECT_EQ(a.resilience.unrecovered, b.resilience.unrecovered) << label;
  EXPECT_EQ(a.resilience.dropped_starvation, b.resilience.dropped_starvation)
      << label;
  EXPECT_EQ(a.resilience.dropped_fault, b.resilience.dropped_fault) << label;
  EXPECT_EQ(a.resilience.dropped_partition, b.resilience.dropped_partition)
      << label;
  EXPECT_EQ(a.resilience.fault_dropped_expected_reward,
            b.resilience.fault_dropped_expected_reward)
      << label;
}

void expect_sharding_invariant(const exp::Instance& inst,
                               const OnlineParams& params, PolicyKind kind,
                               const char* label) {
  const OnlineMetrics legacy = run_once(inst, params, kind, -1);
  const OnlineMetrics one = run_once(inst, params, kind, 1);
  const OnlineMetrics five = run_once(inst, params, kind, 5);
  // More shards than stations must clamp, not break.
  const OnlineMetrics many = run_once(inst, params, kind, 1000);
  expect_identical(legacy, one, label);
  expect_identical(legacy, five, label);
  expect_identical(legacy, many, label);
}

TEST(ResolveNumShards, ExplicitCountClampsToStations) {
  OnlineParams params;
  params.num_shards = 4;
  EXPECT_EQ(resolve_num_shards(params, 20), 4);
  EXPECT_EQ(resolve_num_shards(params, 3), 3);
  params.num_shards = 64;
  EXPECT_EQ(resolve_num_shards(params, 8), 8);
}

TEST(ResolveNumShards, NegativeForcesLegacyEvenUnderEnv) {
  ::setenv("MECAR_SHARDS", "8", 1);
  OnlineParams params;
  params.num_shards = -1;
  EXPECT_EQ(resolve_num_shards(params, 20), 0);
  ::unsetenv("MECAR_SHARDS");
}

TEST(ResolveNumShards, ZeroConsultsEnvironment) {
  OnlineParams params;
  ::unsetenv("MECAR_SHARDS");
  EXPECT_EQ(resolve_num_shards(params, 20), 0);
  ::setenv("MECAR_SHARDS", "6", 1);
  EXPECT_EQ(resolve_num_shards(params, 20), 6);
  ::setenv("MECAR_SHARDS", "64", 1);
  EXPECT_EQ(resolve_num_shards(params, 12), 12);
  ::setenv("MECAR_SHARDS", "0", 1);
  EXPECT_EQ(resolve_num_shards(params, 20), 0);
  ::setenv("MECAR_SHARDS", "junk", 1);
  EXPECT_EQ(resolve_num_shards(params, 20), 0);
  ::unsetenv("MECAR_SHARDS");
}

TEST(ShardEngine, PartitionCoversAllStationsOnce) {
  const exp::Instance inst = busy_instance(3, 50);
  OnlineParams params;
  params.horizon_slots = 50;
  ShardEngine engine(inst.topo, inst.requests, inst.realized, params, {}, 5);
  ASSERT_EQ(engine.num_shards(), 5);
  int prev = -1;
  for (int s = 0; s < inst.topo.num_stations(); ++s) {
    const int shard = engine.shard_of_station(s);
    EXPECT_GE(shard, prev);  // contiguous, non-decreasing
    EXPECT_LT(shard, 5);
    prev = shard;
  }
  EXPECT_EQ(prev, 4);  // every shard got at least one station
}

TEST(ShardEngine, MatchesLegacyBitForBit) {
  const exp::Instance inst = busy_instance(11, 300);
  OnlineParams params;
  params.horizon_slots = 300;
  params.collect_detail = true;
  expect_sharding_invariant(inst, params, PolicyKind::kDynamicRr,
                            "DynamicRR/healthy");
  expect_sharding_invariant(inst, params, PolicyKind::kGreedy,
                            "Greedy/healthy");
  expect_sharding_invariant(inst, params, PolicyKind::kOcorp,
                            "OCORP/healthy");
}

TEST(ShardEngine, MatchesLegacyUnderChaosAndMobility) {
  const exp::Instance inst = busy_instance(17, 260);
  OnlineParams params;
  params.horizon_slots = 260;
  params.collect_detail = true;
  // Outages displace residents, a brownout shrinks a waterfill pool, a
  // link cut partitions, and the solver faults stress the LP ladder.
  params.faults.station_outages.push_back({2, 40, 90});
  params.faults.station_outages.push_back({7, 120, 170});
  params.faults.brownouts.push_back({4, 60, 140, 0.4});
  if (!inst.topo.links().empty()) {
    params.faults.link_outages.push_back({0, 100, 150});
  }
  params.faults.solver_budgets.push_back({30, 80, 6});
  params.faults.solver_jams.push_back({150, 180});
  // Mobility: re-home a few requests mid-run (including across shards).
  params.mobility.push_back({5, 50, 9});
  params.mobility.push_back({12, 80, 0});
  params.mobility.push_back({30, 130, 11});
  expect_sharding_invariant(inst, params, PolicyKind::kDynamicRr,
                            "DynamicRR/chaos");
  expect_sharding_invariant(inst, params, PolicyKind::kGreedy,
                            "Greedy/chaos");
}

TEST(SlotView, WaitingMsAtPoolBoundaries) {
  // First and last request index of the pool, plus a pre-horizon arrival
  // (negative arrival slots accrue waiting from their true arrival time).
  std::vector<mec::ARRequest> requests(3);
  requests[0].arrival_slot = 0;
  requests[1].arrival_slot = -4;
  requests[2].arrival_slot = 9;
  std::vector<RequestState> states(3);
  SlotView view;
  view.slot = 10;
  view.slot_ms = 50.0;
  view.requests = &requests;
  view.states = &states;
  EXPECT_EQ(view.waiting_ms(0), 500.0);
  EXPECT_EQ(view.waiting_ms(1), 700.0);
  EXPECT_EQ(view.waiting_ms(2), 50.0);  // last pool index
}

TEST(SlotView, ResidentDemandEmptyAndAllDisplaced) {
  mec::Topology topo({{0, 1000.0, 1.0, 0.0, 0.0},
                      {1, 1000.0, 1.0, 0.0, 0.0}},
                     {});
  std::vector<mec::ARRequest> requests(2);
  std::vector<RequestState> states(2);
  SlotView view;
  view.topo = &topo;
  view.requests = &requests;
  view.states = &states;
  // Empty: nobody served -> all-zero demand.
  auto demand = view.resident_demand_mhz();
  ASSERT_EQ(demand.size(), 2u);
  EXPECT_EQ(demand[0], 0.0);
  EXPECT_EQ(demand[1], 0.0);
  // All-displaced slot: served but station == -1 contributes nothing.
  states[0].phase = Phase::kServed;
  states[0].station = -1;
  states[0].demand_mhz = 800.0;
  states[1].phase = Phase::kServed;
  states[1].station = -1;
  states[1].demand_mhz = 700.0;
  demand = view.resident_demand_mhz();
  EXPECT_EQ(demand[0], 0.0);
  EXPECT_EQ(demand[1], 0.0);
  // A placed resident lands in its station's bucket.
  states[1].station = 1;
  demand = view.resident_demand_mhz();
  EXPECT_EQ(demand[0], 0.0);
  EXPECT_EQ(demand[1], 700.0);
}

TEST(SlotView, PrecomputedResidentDemandShortCircuits) {
  // When the sharded engine supplies the vector, the accessor must return
  // it verbatim without consulting states (which may be large).
  const std::vector<double> precomputed{123.0, 456.0};
  SlotView view;
  view.resident_demand = &precomputed;
  EXPECT_EQ(view.resident_demand_mhz(), precomputed);
}

TEST(ShardEngine, EmptyShardsAreHarmless) {
  // 12 stations, 12 shards: with a skewed home distribution several
  // shards see no traffic at all; the run must still match legacy.
  const exp::Instance inst = busy_instance(23, 150);
  OnlineParams params;
  params.horizon_slots = 150;
  const OnlineMetrics legacy = run_once(inst, params, PolicyKind::kGreedy, -1);
  const OnlineMetrics all = run_once(inst, params, PolicyKind::kGreedy, 12);
  expect_identical(legacy, all, "Greedy/one-station-shards");
}

// The incremental slot-LP pipeline (DynamicRrParams::incremental_lp) is
// objective-equal but not tie-break-identical to scratch builds, so it is
// NOT covered by the bit-identity contract. It must still complete a
// sharded run with sane accounting, actually exercise the delta path, and
// stay engine-independent (sharded == legacy under the same settings).
TEST(ShardEngine, IncrementalLpPipelineRunsSharded) {
  // Arrivals land in the first 80 slots; the longer run horizon leaves a
  // drain phase so sessions actually complete.
  const exp::Instance inst = busy_instance(11u, 80);
  OnlineParams params;
  params.horizon_slots = 280;
  DynamicRrParams rr;
  rr.incremental_lp = true;
  const auto run = [&](int num_shards) {
    OnlineParams p = params;
    p.num_shards = num_shards;
    DynamicRrPolicy policy(inst.topo, core::AlgorithmParams{}, rr,
                           util::Rng(7));
    OnlineSimulator sim(inst.topo, inst.requests, inst.realized, p);
    const OnlineMetrics m = sim.run(policy);
    const core::IncrementalSlotLp::Stats& stats =
        policy.incremental_lp_stats();
    EXPECT_GT(stats.full_builds, 0);
    EXPECT_GT(stats.full_builds + stats.reuses + stats.delta_builds, 1);
    return m;
  };
  const OnlineMetrics legacy = run(-1);
  const OnlineMetrics sharded = run(3);
  expect_identical(legacy, sharded, "DynamicRR/incremental-lp");
  EXPECT_EQ(legacy.completed + legacy.dropped + legacy.unfinished,
            legacy.arrived);
  EXPECT_GT(legacy.completed, 0);
}

}  // namespace
}  // namespace mecar::sim
