// Unit and property tests for the LP/MIP subsystem.
//
// The simplex is validated against hand-solved programs and, property-style,
// against brute-force enumeration: random small LPs are checked for
// feasibility + weak duality via verification of KKT-ish conditions, and
// random small binary programs are checked against exhaustive search.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "lp/branch_and_bound.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace mecar::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(Model, AddColumnAppendsTermsToExistingRows) {
  Model m;
  const int x = m.add_variable("x", 1.0);
  const int r0 = m.add_constraint("c0", Sense::kLe, 4.0, {{x, 1.0}});
  const int r1 = m.add_constraint("c1", Sense::kLe, 3.0, {{x, 2.0}});
  // Duplicate rows merge; zero coefficients drop.
  const int y = m.add_column("y", 2.0, 5.0,
                             {{r0, 1.0}, {r0, 0.5}, {r1, 0.0}});
  EXPECT_EQ(y, 1);
  ASSERT_EQ(m.row(r0).terms.size(), 2u);
  EXPECT_EQ(m.row(r0).terms[1].col, y);
  EXPECT_NEAR(m.row(r0).terms[1].coeff, 1.5, 1e-12);
  EXPECT_EQ(m.row(r1).terms.size(), 1u);
  EXPECT_NEAR(m.variable(y).upper, 5.0, 1e-12);
  EXPECT_THROW((void)m.add_column("z", 0.0, 1.0, {{99, 1.0}}),
               std::out_of_range);
}

TEST(Model, RemoveColumnStrikesTermsAndZerosTheVariable) {
  Model m;
  const int x = m.add_variable("x", 3.0, 2.0);
  const int y = m.add_variable("y", 5.0, 2.0);
  m.add_constraint("c0", Sense::kLe, 4.0, {{x, 1.0}, {y, 1.0}});
  m.add_constraint("c1", Sense::kLe, 6.0, {{y, 2.0}});
  m.remove_column(y);
  EXPECT_EQ(m.num_variables(), 2) << "indices must stay stable";
  ASSERT_EQ(m.row(0).terms.size(), 1u);
  EXPECT_EQ(m.row(0).terms[0].col, x);
  EXPECT_TRUE(m.row(1).terms.empty());
  EXPECT_EQ(m.variable(y).upper, 0.0);
  EXPECT_EQ(m.variable(y).objective, 0.0);
  // The solved model now optimizes x alone.
  const auto res = SimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 6.0, kTol);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(y)], 0.0, kTol);
  // Removing twice is a harmless no-op.
  m.remove_column(y);
  EXPECT_TRUE(m.row(1).terms.empty());
}

TEST(Model, UpdateBoundObjectiveAndRhs) {
  Model m;
  const int x = m.add_variable("x", 1.0, 10.0);
  const int r = m.add_constraint("c", Sense::kLe, 4.0, {{x, 1.0}});
  m.update_bound(x, 2.0);
  auto res = SimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 2.0, kTol);
  m.update_bound(x, 10.0);
  m.update_rhs(r, 7.0);
  m.update_objective(x, 3.0);
  res = SimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 21.0, kTol);
  EXPECT_THROW(m.update_bound(x, -1.0), std::invalid_argument);
  EXPECT_THROW(m.update_bound(5, 1.0), std::out_of_range);
  EXPECT_THROW(m.update_rhs(9, 1.0), std::out_of_range);
  EXPECT_THROW(m.update_objective(9, 1.0), std::out_of_range);
}

TEST(Model, MutatedModelMatchesScratchBuild) {
  // An add/remove sequence must land on the same optimum as building the
  // final model directly — the contract IncrementalSlotLp relies on.
  Model scratch;
  const int a2 = scratch.add_variable("a", 4.0, 1.0);
  const int c2 = scratch.add_variable("c", 2.5, 1.0);
  scratch.add_constraint("cap", Sense::kLe, 1.5, {{a2, 1.0}, {c2, 1.0}});

  Model mutated;
  const int a = mutated.add_variable("a", 4.0, 1.0);
  const int b = mutated.add_variable("b", 9.0, 1.0);
  const int cap =
      mutated.add_constraint("cap", Sense::kLe, 1.5, {{a, 1.0}, {b, 1.0}});
  mutated.remove_column(b);
  const int c = mutated.add_column("c", 2.5, 1.0, {{cap, 1.0}});
  ASSERT_EQ(c, 2);
  const auto want = SimplexSolver().solve(scratch);
  const auto got = SimplexSolver().solve(mutated);
  ASSERT_TRUE(want.optimal());
  ASSERT_TRUE(got.optimal());
  EXPECT_NEAR(want.objective, got.objective, kTol);
  EXPECT_NEAR(got.x[static_cast<std::size_t>(b)], 0.0, kTol);
}

TEST(Model, AddVariableAndConstraintIndices) {
  Model m;
  EXPECT_EQ(m.add_variable("x", 1.0), 0);
  EXPECT_EQ(m.add_variable("y", 2.0), 1);
  EXPECT_EQ(m.add_constraint("c", Sense::kLe, 3.0, {{0, 1.0}, {1, 1.0}}), 0);
  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_EQ(m.num_constraints(), 1);
}

TEST(Model, MergesDuplicateTermsAndDropsZeros) {
  Model m;
  m.add_variable("x", 1.0);
  m.add_variable("y", 1.0);
  m.add_constraint("c", Sense::kLe, 1.0, {{0, 2.0}, {0, 3.0}, {1, 0.0}});
  const Row& row = m.row(0);
  ASSERT_EQ(row.terms.size(), 1u);
  EXPECT_EQ(row.terms[0].col, 0);
  EXPECT_DOUBLE_EQ(row.terms[0].coeff, 5.0);
}

TEST(Model, RejectsUnknownColumn) {
  Model m;
  m.add_variable("x", 1.0);
  EXPECT_THROW(m.add_constraint("c", Sense::kLe, 1.0, {{5, 1.0}}),
               std::out_of_range);
}

TEST(Model, ObjectiveValueAndViolation) {
  Model m;
  m.add_variable("x", 2.0, 1.0);
  m.add_variable("y", 3.0);
  m.add_constraint("c", Sense::kLe, 4.0, {{0, 1.0}, {1, 1.0}});
  const std::vector<double> x{0.5, 1.0};
  EXPECT_DOUBLE_EQ(m.objective_value(x), 4.0);
  EXPECT_DOUBLE_EQ(m.max_violation(x), 0.0);
  const std::vector<double> bad{2.0, 3.0};  // x>upper and row violated
  EXPECT_NEAR(m.max_violation(bad), 1.0, 1e-12);
}

TEST(Model, WithFixedMovesContributionToRhs) {
  Model m;
  m.add_variable("x", 2.0);
  m.add_variable("y", 3.0);
  m.add_constraint("c", Sense::kLe, 4.0, {{0, 1.0}, {1, 2.0}});
  const Model fixed = m.with_fixed(1, 1.5);
  EXPECT_TRUE(fixed.is_fixed(1));
  EXPECT_DOUBLE_EQ(fixed.fixed_objective(), 4.5);
  EXPECT_DOUBLE_EQ(fixed.row(0).rhs, 1.0);
  ASSERT_EQ(fixed.row(0).terms.size(), 1u);
  EXPECT_EQ(fixed.row(0).terms[0].col, 0);
}

TEST(Model, WithFixedRejectsOutOfBounds) {
  Model m;
  m.add_variable("x", 1.0, 1.0);
  EXPECT_THROW(m.with_fixed(0, 2.0), std::invalid_argument);
  EXPECT_THROW(m.with_fixed(3, 0.0), std::out_of_range);
}

// --- Simplex on textbook programs --------------------------------------

TEST(Simplex, SolvesBasicTwoVariableLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> opt 36 at (2, 6).
  Model m;
  const int x = m.add_variable("x", 3.0);
  const int y = m.add_variable("y", 5.0);
  m.add_constraint("c1", Sense::kLe, 4.0, {{x, 1.0}});
  m.add_constraint("c2", Sense::kLe, 12.0, {{y, 2.0}});
  m.add_constraint("c3", Sense::kLe, 18.0, {{x, 3.0}, {y, 2.0}});
  const auto res = SimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 36.0, kTol);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(x)], 2.0, kTol);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(y)], 6.0, kTol);
}

TEST(Simplex, HandlesUpperBoundsViaInternalRows) {
  // max x + y, x <= 0.6, y <= 0.7 (bounds), x + y <= 1 -> opt 1.
  Model m;
  const int x = m.add_variable("x", 1.0, 0.6);
  const int y = m.add_variable("y", 1.0, 0.7);
  m.add_constraint("c", Sense::kLe, 1.0, {{x, 1.0}, {y, 1.0}});
  const auto res = SimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 1.0, kTol);
  EXPECT_LE(res.x[static_cast<std::size_t>(x)], 0.6 + kTol);
  EXPECT_LE(res.x[static_cast<std::size_t>(y)], 0.7 + kTol);
}

TEST(Simplex, GreaterEqualRowsNeedPhase1) {
  // max -x - y s.t. x + y >= 2, x <= 3, y <= 3 -> opt -2.
  Model m;
  const int x = m.add_variable("x", -1.0, 3.0);
  const int y = m.add_variable("y", -1.0, 3.0);
  m.add_constraint("c", Sense::kGe, 2.0, {{x, 1.0}, {y, 1.0}});
  const auto res = SimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, -2.0, kTol);
  EXPECT_NEAR(res.x[0] + res.x[1], 2.0, kTol);
}

TEST(Simplex, EqualityRows) {
  // max 2x + 3y s.t. x + y = 4, x - y <= 2 -> prefer y: (0,4) -> 12? check:
  // x+y=4; max 2x+3y = 2x + 3(4-x) = 12 - x -> x = 0, obj 12.
  Model m;
  const int x = m.add_variable("x", 2.0);
  const int y = m.add_variable("y", 3.0);
  m.add_constraint("eq", Sense::kEq, 4.0, {{x, 1.0}, {y, 1.0}});
  m.add_constraint("le", Sense::kLe, 2.0, {{x, 1.0}, {y, -1.0}});
  const auto res = SimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 12.0, kTol);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(x)], 0.0, kTol);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(y)], 4.0, kTol);
}

TEST(Simplex, DetectsInfeasibility) {
  Model m;
  const int x = m.add_variable("x", 1.0);
  m.add_constraint("c1", Sense::kLe, 1.0, {{x, 1.0}});
  m.add_constraint("c2", Sense::kGe, 2.0, {{x, 1.0}});
  const auto res = SimplexSolver().solve(m);
  EXPECT_EQ(res.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Model m;
  m.add_variable("x", 1.0);
  const auto res = SimplexSolver().solve(m);
  EXPECT_EQ(res.status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsIsNormalized) {
  // max -x s.t. -x <= -2  (i.e. x >= 2) -> opt -2.
  Model m;
  const int x = m.add_variable("x", -1.0);
  m.add_constraint("c", Sense::kLe, -2.0, {{x, -1.0}});
  const auto res = SimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, -2.0, kTol);
}

TEST(Simplex, ZeroUpperBoundVariableIsDropped) {
  Model m;
  const int x = m.add_variable("x", 5.0, 0.0);
  const int y = m.add_variable("y", 1.0, 2.0);
  m.add_constraint("c", Sense::kLe, 10.0, {{x, 1.0}, {y, 1.0}});
  const auto res = SimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 2.0, kTol);
  EXPECT_DOUBLE_EQ(res.x[static_cast<std::size_t>(x)], 0.0);
}

TEST(Simplex, FixedVariableReportsItsValue) {
  Model m;
  const int x = m.add_variable("x", 2.0, 1.0);
  const int y = m.add_variable("y", 1.0, 1.0);
  m.add_constraint("c", Sense::kLe, 1.5, {{x, 1.0}, {y, 1.0}});
  const Model fixed = m.with_fixed(x, 1.0);
  const auto res = SimplexSolver().solve(fixed);
  ASSERT_TRUE(res.optimal());
  EXPECT_DOUBLE_EQ(res.x[static_cast<std::size_t>(x)], 1.0);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(y)], 0.5, kTol);
  EXPECT_NEAR(res.objective, 2.5, kTol);
}

TEST(Simplex, DegenerateProgramTerminates) {
  // Classic degenerate vertex: several redundant constraints through origin.
  Model m;
  const int x = m.add_variable("x", 1.0);
  const int y = m.add_variable("y", 1.0);
  m.add_constraint("c1", Sense::kLe, 0.0, {{x, 1.0}, {y, -1.0}});
  m.add_constraint("c2", Sense::kLe, 0.0, {{x, -1.0}, {y, 1.0}});
  m.add_constraint("c3", Sense::kLe, 2.0, {{x, 1.0}, {y, 1.0}});
  const auto res = SimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 2.0, kTol);
}

TEST(Simplex, RedundantEqualityRowsAreHarmless) {
  Model m;
  const int x = m.add_variable("x", 1.0, 5.0);
  m.add_constraint("eq1", Sense::kEq, 2.0, {{x, 1.0}});
  m.add_constraint("eq2", Sense::kEq, 2.0, {{x, 1.0}});  // duplicate
  const auto res = SimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 2.0, kTol);
}

// --- Property tests: random LPs are feasible-optimal ---------------------

struct RandomLpCase {
  unsigned seed;
};

class SimplexRandomLp : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimplexRandomLp, SolutionIsFeasibleAndBeatsSampledPoints) {
  util::Rng rng(GetParam());
  Model m;
  const int n = static_cast<int>(rng.uniform_int(2, 6));
  const int rows = static_cast<int>(rng.uniform_int(1, 5));
  for (int j = 0; j < n; ++j) {
    m.add_variable("x" + std::to_string(j), rng.uniform(-2.0, 3.0),
                   rng.uniform(0.5, 3.0));
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.7)) {
        terms.push_back(Term{j, rng.uniform(0.1, 2.0)});
      }
    }
    if (terms.empty()) terms.push_back(Term{0, 1.0});
    m.add_constraint("r" + std::to_string(r), Sense::kLe,
                     rng.uniform(1.0, 6.0), terms);
  }
  const auto res = SimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal()) << to_string(res.status);
  EXPECT_LE(m.max_violation(res.x), 1e-6);
  EXPECT_NEAR(m.objective_value(res.x), res.objective, 1e-6);

  // No random feasible point may beat the reported optimum.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> p(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      p[static_cast<std::size_t>(j)] =
          rng.uniform(0.0, m.variable(j).upper);
    }
    if (m.max_violation(p) <= 0.0) {
      EXPECT_LE(m.objective_value(p), res.objective + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomLp,
                         ::testing::Range(1u, 41u));

// --- Branch and bound ----------------------------------------------------

TEST(BranchAndBound, SolvesKnapsack) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary -> a + c = 17? options:
  // {a,b}:7 w=7 infeasible; {a,c} w=5 val=17; {b,c} w=6 val=20 <- best.
  Model m;
  const int a = m.add_variable("a", 10.0, 1.0, true);
  const int b = m.add_variable("b", 13.0, 1.0, true);
  const int c = m.add_variable("c", 7.0, 1.0, true);
  m.add_constraint("w", Sense::kLe, 6.0, {{a, 3.0}, {b, 4.0}, {c, 2.0}});
  const auto res = BranchAndBound().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 20.0, kTol);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(a)], 0.0, kTol);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(b)], 1.0, kTol);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(c)], 1.0, kTol);
}

TEST(BranchAndBound, MixedIntegerProgram) {
  // max x + 2y, x integer in [0,3], y continuous in [0, 1.5], x + y <= 3.2.
  // Best: x=1? compare x=3 -> y<=0.2 -> 3.4; x=2 -> y<=1.2 -> 4.4;
  // x=1 -> y<=1.5 -> 4.0. Opt: x=2, y=1.2 -> 4.4.
  Model m;
  const int x = m.add_variable("x", 1.0, 3.0, true);
  const int y = m.add_variable("y", 2.0, 1.5, false);
  m.add_constraint("c", Sense::kLe, 3.2, {{x, 1.0}, {y, 1.0}});
  const auto res = BranchAndBound().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 4.4, kTol);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(x)], 2.0, kTol);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(y)], 1.2, kTol);
}

TEST(BranchAndBound, InfeasibleIntegerProgram) {
  Model m;
  const int x = m.add_variable("x", 1.0, 1.0, true);
  m.add_constraint("c1", Sense::kGe, 0.4, {{x, 1.0}});
  m.add_constraint("c2", Sense::kLe, 0.6, {{x, 1.0}});
  const auto res = BranchAndBound().solve(m);
  EXPECT_EQ(res.status, SolveStatus::kInfeasible);
}

TEST(BranchAndBound, PureLpPassesThrough) {
  Model m;
  const int x = m.add_variable("x", 1.0, 2.5, false);
  m.add_constraint("c", Sense::kLe, 2.0, {{x, 1.0}});
  const auto res = BranchAndBound().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 2.0, kTol);
}

// Brute-force verification on random binary programs.
class BnbRandomBinary : public ::testing::TestWithParam<unsigned> {};

TEST_P(BnbRandomBinary, MatchesExhaustiveSearch) {
  util::Rng rng(1000 + GetParam());
  Model m;
  const int n = static_cast<int>(rng.uniform_int(2, 10));
  const int rows = static_cast<int>(rng.uniform_int(1, 4));
  for (int j = 0; j < n; ++j) {
    m.add_variable("b" + std::to_string(j), rng.uniform(-1.0, 5.0), 1.0, true);
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.8)) terms.push_back(Term{j, rng.uniform(0.2, 2.0)});
    }
    if (terms.empty()) terms.push_back(Term{0, 1.0});
    m.add_constraint("r" + std::to_string(r), Sense::kLe,
                     rng.uniform(0.5, 1.0 * n), terms);
  }

  // Exhaustive optimum.
  double best = -1e18;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    for (int j = 0; j < n; ++j) {
      x[static_cast<std::size_t>(j)] = (mask >> j) & 1u ? 1.0 : 0.0;
    }
    if (m.max_violation(x) <= 1e-9) {
      best = std::max(best, m.objective_value(x));
    }
  }
  ASSERT_GT(best, -1e17);  // all-zeros is always feasible here

  const auto res = BranchAndBound().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, best, 1e-6);
  EXPECT_LE(m.max_violation(res.x), 1e-6);
  for (int j = 0; j < n; ++j) {
    const double v = res.x[static_cast<std::size_t>(j)];
    EXPECT_NEAR(v, std::round(v), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbRandomBinary, ::testing::Range(1u, 31u));

TEST(SolveStatusNames, AllEnumeratorsHaveNames) {
  EXPECT_EQ(to_string(SolveStatus::kNotSolved), "not-solved");
  EXPECT_EQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_EQ(to_string(SolveStatus::kIterationLimit), "iteration-limit");
  EXPECT_EQ(to_string(SolveStatus::kDeadline), "deadline");
  EXPECT_EQ(to_string(SolveStatus::kNumericalError), "numerical-error");
}

TEST(SolveStatusNames, DefaultResultIsNotSolved) {
  EXPECT_EQ(SolveResult{}.status, SolveStatus::kNotSolved);
}

}  // namespace
}  // namespace mecar::lp
