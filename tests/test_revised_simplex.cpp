// Tests for the revised simplex engine: the same textbook programs as the
// dense tableau, plus property sweeps cross-checking both engines on
// random LPs and on real slot-indexed instances.
#include <gtest/gtest.h>

#include <cmath>

#include "core/slot_lp.h"
#include "lp/revised_simplex.h"
#include "lp/simplex.h"
#include "mec/workload.h"
#include "util/rng.h"

namespace mecar::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(RevisedSimplex, SolvesBasicTwoVariableLp) {
  Model m;
  const int x = m.add_variable("x", 3.0);
  const int y = m.add_variable("y", 5.0);
  m.add_constraint("c1", Sense::kLe, 4.0, {{x, 1.0}});
  m.add_constraint("c2", Sense::kLe, 12.0, {{y, 2.0}});
  m.add_constraint("c3", Sense::kLe, 18.0, {{x, 3.0}, {y, 2.0}});
  const auto res = RevisedSimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 36.0, kTol);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(x)], 2.0, kTol);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(y)], 6.0, kTol);
}

TEST(RevisedSimplex, Phase1AndEquality) {
  Model m;
  const int x = m.add_variable("x", 2.0);
  const int y = m.add_variable("y", 3.0);
  m.add_constraint("eq", Sense::kEq, 4.0, {{x, 1.0}, {y, 1.0}});
  m.add_constraint("le", Sense::kLe, 2.0, {{x, 1.0}, {y, -1.0}});
  const auto res = RevisedSimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 12.0, kTol);
}

TEST(RevisedSimplex, DetectsInfeasibility) {
  Model m;
  const int x = m.add_variable("x", 1.0);
  m.add_constraint("c1", Sense::kLe, 1.0, {{x, 1.0}});
  m.add_constraint("c2", Sense::kGe, 2.0, {{x, 1.0}});
  EXPECT_EQ(RevisedSimplexSolver().solve(m).status,
            SolveStatus::kInfeasible);
}

TEST(RevisedSimplex, DetectsUnboundedness) {
  Model m;
  m.add_variable("x", 1.0);
  EXPECT_EQ(RevisedSimplexSolver().solve(m).status,
            SolveStatus::kUnbounded);
}

TEST(RevisedSimplex, UpperBoundsAndFixedVariables) {
  Model m;
  const int x = m.add_variable("x", 2.0, 1.0);
  const int y = m.add_variable("y", 1.0, 1.0);
  m.add_constraint("c", Sense::kLe, 1.5, {{x, 1.0}, {y, 1.0}});
  const Model fixed = m.with_fixed(x, 1.0);
  const auto res = RevisedSimplexSolver().solve(fixed);
  ASSERT_TRUE(res.optimal());
  EXPECT_DOUBLE_EQ(res.x[static_cast<std::size_t>(x)], 1.0);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(y)], 0.5, kTol);
  EXPECT_NEAR(res.objective, 2.5, kTol);
}

TEST(RevisedSimplex, RefactorizationKeepsAccuracy) {
  // Force frequent refactorization and verify nothing drifts.
  RevisedSimplexOptions options;
  options.refactor_interval = 2;
  Model m;
  util::Rng rng(3);
  for (int j = 0; j < 20; ++j) {
    m.add_variable("x" + std::to_string(j), rng.uniform(0.5, 2.0), 3.0);
  }
  for (int r = 0; r < 12; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < 20; ++j) {
      if (rng.bernoulli(0.4)) terms.push_back({j, rng.uniform(0.1, 1.0)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    m.add_constraint("r" + std::to_string(r), Sense::kLe,
                     rng.uniform(1.0, 5.0), terms);
  }
  const auto fast = RevisedSimplexSolver(options).solve(m);
  const auto reference = SimplexSolver().solve(m);
  ASSERT_TRUE(fast.optimal());
  ASSERT_TRUE(reference.optimal());
  EXPECT_NEAR(fast.objective, reference.objective, 1e-6);
  EXPECT_LE(m.max_violation(fast.x), 1e-6);
}

// Cross-engine agreement on random LPs.
class EngineAgreement : public ::testing::TestWithParam<unsigned> {};

TEST_P(EngineAgreement, SameObjectiveAsDenseTableau) {
  util::Rng rng(GetParam());
  Model m;
  const int n = static_cast<int>(rng.uniform_int(3, 24));
  const int rows = static_cast<int>(rng.uniform_int(2, 12));
  for (int j = 0; j < n; ++j) {
    m.add_variable("x" + std::to_string(j), rng.uniform(-1.0, 3.0),
                   rng.bernoulli(0.3) ? rng.uniform(0.5, 2.0) : kInf);
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.5)) terms.push_back({j, rng.uniform(0.1, 2.0)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    const Sense sense = rng.bernoulli(0.2) ? Sense::kGe : Sense::kLe;
    const double rhs = sense == Sense::kGe ? rng.uniform(0.2, 1.5)
                                           : rng.uniform(1.0, 6.0);
    m.add_constraint("r" + std::to_string(r), sense, rhs, terms);
  }
  const auto dense = SimplexSolver().solve(m);
  const auto revised = RevisedSimplexSolver().solve(m);
  ASSERT_EQ(dense.status, revised.status)
      << to_string(dense.status) << " vs " << to_string(revised.status);
  if (dense.optimal()) {
    EXPECT_NEAR(dense.objective, revised.objective,
                1e-6 * std::max(1.0, std::abs(dense.objective)));
    EXPECT_LE(m.max_violation(revised.x), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreement, ::testing::Range(1u, 41u));

// Cross-engine agreement on the real slot-indexed LP.
class SlotLpAgreement : public ::testing::TestWithParam<unsigned> {};

TEST_P(SlotLpAgreement, SameObjectiveOnPaperInstances) {
  util::Rng rng(GetParam());
  mec::TopologyParams tparams;
  tparams.num_stations = 10;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = 40;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const auto inst =
      core::build_slot_lp(topo, requests, core::AlgorithmParams{});
  const auto dense = SimplexSolver().solve(inst.model);
  const auto revised = RevisedSimplexSolver().solve(inst.model);
  ASSERT_TRUE(dense.optimal());
  ASSERT_TRUE(revised.optimal());
  EXPECT_NEAR(dense.objective, revised.objective,
              1e-5 * std::max(1.0, dense.objective));
  EXPECT_LE(inst.model.max_violation(revised.x), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlotLpAgreement, ::testing::Range(1u, 9u));

// Warm starts: the slot sequence mirrors DynamicRR's per-slot LP-PT
// solves — same tableau shape, slightly different capacities each slot.
std::vector<Model> warm_slot_sequence(int num_requests, int slots,
                                      unsigned seed) {
  util::Rng rng(seed);
  mec::TopologyParams tparams;
  tparams.num_stations = 10;
  const mec::Topology topo = mec::generate_topology(tparams, rng);
  mec::WorkloadParams wparams;
  wparams.num_requests = num_requests;
  const auto requests = mec::generate_requests(wparams, topo, rng);
  const core::AlgorithmParams params;
  std::vector<Model> models;
  for (int t = 0; t < slots; ++t) {
    core::SlotLpOptions options;
    std::vector<double> caps;
    for (const auto& bs : topo.stations()) {
      // Keep floor(cap / slot_capacity) fixed so the tableau shape is
      // stable across the sequence; only the rhs drifts.
      const double k =
          std::floor(bs.capacity_mhz / params.slot_capacity_mhz);
      caps.push_back((k + 0.25 + 0.1 * static_cast<double>(t % 5)) *
                     params.slot_capacity_mhz);
    }
    options.capacity_override_mhz = std::move(caps);
    models.push_back(
        core::build_slot_lp(topo, requests, params, options).model);
  }
  return models;
}

TEST(WarmStart, SameObjectiveAsColdOnSlotSequence) {
  const auto models = warm_slot_sequence(40, 6, 11);
  RevisedSimplexSolver solver;
  WarmStartBasis warm;
  for (std::size_t t = 0; t < models.size(); ++t) {
    const auto cold = solver.solve(models[t]);
    const auto warmed = solver.solve(models[t], warm);
    ASSERT_TRUE(cold.optimal());
    ASSERT_TRUE(warmed.optimal());
    // The warm start changes the pivot path, never the optimum.
    EXPECT_NEAR(cold.objective, warmed.objective, 1e-9)
        << "slot " << t;
    EXPECT_LE(models[t].max_violation(warmed.x), 1e-6);
  }
}

TEST(WarmStart, EngagesAndReducesPivotsAcrossSlots) {
  const auto models = warm_slot_sequence(40, 6, 11);
  RevisedSimplexSolver solver;
  WarmStartBasis warm;
  long cold_pivots = 0;
  long warm_pivots = 0;
  int warm_adoptions = 0;
  for (std::size_t t = 0; t < models.size(); ++t) {
    const auto cold = solver.solve(models[t]);
    const auto warmed = solver.solve(models[t], warm);
    ASSERT_TRUE(warmed.optimal());
    // The SolveStats breakdown must reconcile with the legacy totals.
    EXPECT_EQ(cold.stats.pivots(), cold.iterations);
    EXPECT_EQ(warmed.stats.pivots(), warmed.iterations);
    EXPECT_FALSE(cold.stats.warm_start_attempted);
    // t == 0 has an empty basis to reuse, so nothing is attempted yet.
    EXPECT_EQ(warmed.stats.warm_start_attempted, t > 0);
    EXPECT_EQ(warmed.stats.warm_start_used, warmed.warm_started);
    if (warmed.warm_started) {
      // An adopted basis is artificial-free and feasible: no phase 1.
      EXPECT_EQ(warmed.stats.phase1_iterations, 0) << "slot " << t;
    }
    cold_pivots += cold.stats.pivots();
    warm_pivots += warmed.stats.pivots();
    if (t == 0) {
      // Nothing to reuse yet.
      EXPECT_FALSE(warmed.warm_started);
    } else if (warmed.warm_started) {
      ++warm_adoptions;
    }
  }
  EXPECT_GT(warm_adoptions, 0)
      << "the basis never carried over on a shape-stable sequence";
  EXPECT_LT(warm_pivots, cold_pivots)
      << "warm starts should strictly reduce total pivots";
}

TEST(WarmStart, AfterRecoveryMatchesColdBitForBit) {
  // A solve that exhausts the sparse recovery ladder hands the answer to
  // the dense cross-solve and CLEARS the carried basis — so the next
  // warm-started solve must be indistinguishable from a cold one.
  const auto models = warm_slot_sequence(40, 2, 11);
  RevisedSimplexOptions faulty;
  faulty.inject_nan_every_pivot = true;
  WarmStartBasis warm;
  const auto recovered = RevisedSimplexSolver(faulty).solve(models[0], warm);
  ASSERT_TRUE(recovered.optimal());
  ASSERT_GT(recovered.stats.recovery_dense_solves, 0);
  EXPECT_TRUE(warm.empty()) << "recovery must not export a basis";

  RevisedSimplexSolver solver;
  const auto after = solver.solve(models[1], warm);
  const auto cold = solver.solve(models[1]);
  ASSERT_TRUE(after.optimal());
  ASSERT_TRUE(cold.optimal());
  EXPECT_FALSE(after.warm_started);
  // Bit-for-bit: same pivot path, same vertex, same objective.
  EXPECT_EQ(after.iterations, cold.iterations);
  EXPECT_EQ(after.objective, cold.objective);
  EXPECT_EQ(after.x, cold.x);
}

TEST(WarmStart, RepairsBasisAcrossIncrementalMutation) {
  // Solve, mutate the model through the incremental API (remove a column,
  // append a column and a <= row), solve again with the carried basis: the
  // repair path must remap the old basis onto the new tableau instead of
  // discarding it, and land on the same optimum as a cold solve.
  Model m;
  const int x = m.add_variable("x", 3.0, 4.0);
  const int y = m.add_variable("y", 2.0, 4.0);
  const int z = m.add_variable("z", 1.0, 4.0);
  const int r0 = m.add_constraint("c0", Sense::kLe, 4.0,
                                  {{x, 1.0}, {y, 1.0}});
  m.add_constraint("c1", Sense::kLe, 3.0, {{y, 1.0}, {z, 1.0}});

  RevisedSimplexOptions opt;
  opt.repair_warm_basis = true;  // repair is opt-in (cold start otherwise)
  RevisedSimplexSolver solver(opt);
  WarmStartBasis warm;
  const auto first = solver.solve(m, warm);
  ASSERT_TRUE(first.optimal());
  ASSERT_FALSE(warm.empty());
  ASSERT_FALSE(warm.model_cols.empty());

  m.remove_column(z);
  const int w = m.add_column("w", 2.5, 4.0, {{r0, 1.0}});
  m.add_constraint("c2", Sense::kLe, 2.0, {{w, 1.0}});

  const auto cold = solver.solve(m);
  const auto repaired = solver.solve(m, warm);
  ASSERT_TRUE(cold.optimal());
  ASSERT_TRUE(repaired.optimal());
  EXPECT_TRUE(repaired.stats.warm_start_attempted);
  EXPECT_TRUE(repaired.stats.warm_start_repaired);
  EXPECT_NEAR(cold.objective, repaired.objective, kTol);
  EXPECT_LE(m.max_violation(repaired.x), kTol);
  EXPECT_NEAR(repaired.x[static_cast<std::size_t>(z)], 0.0, kTol);
}

TEST(WarmStart, RepairOnSlotLpDeltaSequence) {
  // Slot-LP shaped repair: drop the columns of one "completed" request
  // from a real slot model and re-solve with the carried basis. Objective
  // must match a scratch solve of the mutated model.
  const auto models = warm_slot_sequence(40, 1, 7);
  Model m = models[0];
  RevisedSimplexOptions opt;
  opt.repair_warm_basis = true;  // repair is opt-in (cold start otherwise)
  RevisedSimplexSolver solver(opt);
  WarmStartBasis warm;
  const auto first = solver.solve(m, warm);
  ASSERT_TRUE(first.optimal());

  // Strike every column of the first variable's request ("y_<id>_...").
  const std::string prefix =
      m.variable(0).name.substr(0, m.variable(0).name.find('_', 2) + 1);
  for (int j = 0; j < m.num_variables(); ++j) {
    if (m.variable(j).name.rfind(prefix, 0) == 0) m.remove_column(j);
  }
  const auto cold = solver.solve(m);
  const auto repaired = solver.solve(m, warm);
  ASSERT_TRUE(cold.optimal());
  ASSERT_TRUE(repaired.optimal());
  EXPECT_NEAR(cold.objective, repaired.objective,
              1e-6 * std::max(1.0, std::abs(cold.objective)));
  EXPECT_LE(m.max_violation(repaired.x), 1e-6);
}

TEST(SolveStats, CountsPhasesAndRefactorizations) {
  // An equality row forces artificials, so phase 1 must do work.
  Model m;
  const int x = m.add_variable("x", 2.0);
  const int y = m.add_variable("y", 3.0);
  m.add_constraint("eq", Sense::kEq, 4.0, {{x, 1.0}, {y, 1.0}});
  m.add_constraint("le", Sense::kLe, 2.0, {{x, 1.0}, {y, -1.0}});
  const auto res = RevisedSimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_GT(res.stats.phase1_iterations, 0);
  EXPECT_EQ(res.stats.pivots(), res.iterations);
  EXPECT_FALSE(res.stats.warm_start_attempted);
  EXPECT_FALSE(res.stats.warm_start_used);

  // The dense tableau fills the same phase split.
  const auto dense = SimplexSolver().solve(m);
  ASSERT_TRUE(dense.optimal());
  EXPECT_GT(dense.stats.phase1_iterations, 0);
  EXPECT_EQ(dense.stats.pivots(), dense.iterations);
  EXPECT_EQ(dense.stats.refactorizations, 0);
}

TEST(SolveStats, RecordsRefactorizationsAtShortInterval) {
  RevisedSimplexOptions options;
  options.refactor_interval = 2;
  const auto models = warm_slot_sequence(40, 1, 11);
  const auto res = RevisedSimplexSolver(options).solve(models[0]);
  ASSERT_TRUE(res.optimal());
  if (res.iterations >= 2) {
    EXPECT_GT(res.stats.refactorizations, 0);
  }
}

TEST(WarmStart, ColdFallbackOnDimensionChange) {
  const auto models = warm_slot_sequence(40, 1, 11);
  RevisedSimplexSolver solver;
  WarmStartBasis warm;
  ASSERT_TRUE(solver.solve(models[0], warm).optimal());
  ASSERT_FALSE(warm.empty());

  // A structurally different LP: the stale basis must be ignored, the
  // solve must cold-start and still reach its optimum.
  Model other;
  const int x = other.add_variable("x", 3.0);
  const int y = other.add_variable("y", 5.0);
  other.add_constraint("c1", Sense::kLe, 4.0, {{x, 1.0}});
  other.add_constraint("c2", Sense::kLe, 12.0, {{y, 2.0}});
  other.add_constraint("c3", Sense::kLe, 18.0, {{x, 3.0}, {y, 2.0}});
  const auto res = solver.solve(other, warm);
  ASSERT_TRUE(res.optimal());
  EXPECT_FALSE(res.warm_started);
  EXPECT_NEAR(res.objective, 36.0, kTol);
  // The export now reflects the new model, ready for its own sequence.
  EXPECT_EQ(warm.total_cols, other.num_variables() + 3);
}

// Beale's classic cycling example. Dantzig pricing with a naive tie rule
// cycles forever on it; the degenerate-stall detector must hand over to
// Bland's rule and terminate at the optimum 1/20.
Model beale_lp() {
  Model m;
  const int x1 = m.add_variable("x1", 0.75);
  const int x2 = m.add_variable("x2", -150.0);
  const int x3 = m.add_variable("x3", 0.02, 1.0);  // x3 <= 1 as column bound
  const int x4 = m.add_variable("x4", -6.0);
  m.add_constraint("r1", Sense::kLe, 0.0,
                   {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}});
  m.add_constraint("r2", Sense::kLe, 0.0,
                   {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}});
  return m;
}

class AntiCycling : public ::testing::TestWithParam<PricingMode> {};

TEST_P(AntiCycling, BealeTerminatesAtOptimum) {
  RevisedSimplexOptions options;
  options.pricing = GetParam();
  // Hair-trigger stall detection: Bland's rule engages on the first
  // degenerate streak, which Beale's LP hits immediately.
  options.stall_threshold = 2;
  const auto res = RevisedSimplexSolver(options).solve(beale_lp());
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 0.05, kTol);
  EXPECT_EQ(res.stats.pricing_mode, static_cast<int>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Modes, AntiCycling,
                         ::testing::Values(PricingMode::kDantzig,
                                           PricingMode::kDevex,
                                           PricingMode::kSteepestEdge));

TEST(AntiCyclingStats, DegenerateSolveStaysFiniteAtDefaults) {
  // The default stall threshold must also terminate (just later).
  const auto res = RevisedSimplexSolver().solve(beale_lp());
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 0.05, kTol);
}

TEST(IterationLimit, SurfacesAsStatusNotHang) {
  RevisedSimplexOptions options;
  options.max_iterations = 1;
  const auto models = warm_slot_sequence(40, 1, 11);
  const auto res = RevisedSimplexSolver(options).solve(models[0]);
  EXPECT_EQ(res.status, SolveStatus::kIterationLimit);
  EXPECT_LE(res.iterations, 1);
}

TEST(BoundedVariables, PureBoundFlipModelNeedsNoRows) {
  // No constraints at all: the optimum is attained entirely by flipping
  // profitable columns to their upper bounds; the basis stays 0x0.
  Model m;
  m.add_variable("a", 2.0, 1.5);
  m.add_variable("b", -1.0, 4.0);  // unprofitable: stays at 0
  m.add_variable("c", 0.5, 2.0);
  const auto res = RevisedSimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 2.0 * 1.5 + 0.5 * 2.0, kTol);
  EXPECT_NEAR(res.x[0], 1.5, kTol);
  EXPECT_NEAR(res.x[1], 0.0, kTol);
  EXPECT_NEAR(res.x[2], 2.0, kTol);
  EXPECT_GT(res.stats.bound_flips, 0);
  EXPECT_EQ(res.stats.eta_pivots, 0);  // no basis ever changed
}

TEST(BoundedVariables, FlipAndPivotMix) {
  // One row, two bounded columns: the optimum needs both a bound flip and
  // a genuine pivot. max 3a + b, a <= 2, b <= 10, a + b <= 5.
  Model m;
  const int a = m.add_variable("a", 3.0, 2.0);
  const int b = m.add_variable("b", 1.0, 10.0);
  m.add_constraint("c", Sense::kLe, 5.0, {{a, 1.0}, {b, 1.0}});
  const auto res = RevisedSimplexSolver().solve(m);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 3.0 * 2.0 + 3.0, kTol);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(a)], 2.0, kTol);
  EXPECT_NEAR(res.x[static_cast<std::size_t>(b)], 3.0, kTol);
}

class PricingAgreement : public ::testing::TestWithParam<unsigned> {};

TEST_P(PricingAgreement, AllRulesReachTheSameObjective) {
  const auto models = warm_slot_sequence(30, 1, GetParam());
  double reference = 0.0;
  for (const PricingMode mode :
       {PricingMode::kDantzig, PricingMode::kDevex,
        PricingMode::kSteepestEdge}) {
    RevisedSimplexOptions options;
    options.pricing = mode;
    const auto res = RevisedSimplexSolver(options).solve(models[0]);
    ASSERT_TRUE(res.optimal());
    EXPECT_EQ(res.stats.pricing_mode, static_cast<int>(mode));
    if (mode == PricingMode::kDantzig) {
      reference = res.objective;
    } else {
      EXPECT_NEAR(res.objective, reference,
                  1e-6 * std::max(1.0, std::abs(reference)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PricingAgreement,
                         ::testing::Range(11u, 16u));

TEST(SolveStats, ReportsEtaFileActivity) {
  const auto models = warm_slot_sequence(40, 1, 11);
  const auto res = RevisedSimplexSolver().solve(models[0]);
  ASSERT_TRUE(res.optimal());
  // A 100+-pivot solve must have absorbed pivots into the eta file rather
  // than refactorizing every step.
  EXPECT_GT(res.stats.eta_pivots, 0);
  EXPECT_GT(res.stats.eta_len_max, 0);
  EXPECT_LE(res.stats.eta_len_max,
            RevisedSimplexOptions{}.refactor_interval);
  EXPECT_GE(res.stats.eta_pivots,
            res.stats.eta_len_max);
}

TEST(SolveLpFrontend, PicksAnEngineAndSolves) {
  Model small;
  const int x = small.add_variable("x", 1.0, 2.0);
  small.add_constraint("c", Sense::kLe, 1.0, {{x, 1.0}});
  const auto res = solve_lp(small);
  ASSERT_TRUE(res.optimal());
  EXPECT_NEAR(res.objective, 1.0, kTol);
}

}  // namespace
}  // namespace mecar::lp
